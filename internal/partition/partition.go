// Package partition assigns candidate itemsets to processors.
//
// DD partitions candidates round-robin, which balances counts but scatters
// first items across every processor, making root-level filtering
// impossible.  IDD instead groups candidates by their *first item* and packs
// the groups into P buckets with a bin-packing heuristic so each processor
// owns all candidates beginning with its items (Section III-C).  When too
// many candidates share one first item — the skew problem the paper notes
// gets worse as P grows — the group is split further by the *second* item.
package partition

import (
	"sort"

	"parapriori/internal/itemset"
)

// Group is a run of candidates sharing a first item (or a first-and-second
// item pair when the group was split for skew).  Start and End index into
// the lexicographically sorted candidate slice the group was built from, so
// groups never copy candidates.
type Group struct {
	First     itemset.Item
	Second    itemset.Item
	HasSecond bool
	Start     int
	End       int
}

// Size returns the number of candidates in the group.
func (g Group) Size() int { return g.End - g.Start }

// Groups partitions the sorted candidate slice into first-item groups,
// splitting any group larger than splitThreshold by second item.  A
// splitThreshold <= 0 disables splitting.  Candidates must be sorted
// lexicographically (apriori.Gen output order) and have at least 2 items
// when splitting can trigger.
func Groups(cands []itemset.Itemset, splitThreshold int) []Group {
	var out []Group
	for start := 0; start < len(cands); {
		end := start
		first := cands[start][0]
		for end < len(cands) && cands[end][0] == first {
			end++
		}
		if splitThreshold > 0 && end-start > splitThreshold && len(cands[start]) >= 2 {
			// Split the oversized run by second item; within the run the
			// candidates are still sorted, so sub-runs are contiguous too.
			for s := start; s < end; {
				e := s
				second := cands[s][1]
				for e < end && cands[e][1] == second {
					e++
				}
				out = append(out, Group{First: first, Second: second, HasSecond: true, Start: s, End: e})
				s = e
			}
		} else {
			out = append(out, Group{First: first, Start: start, End: end})
		}
		start = end
	}
	return out
}

// Assignment is the result of packing candidate groups onto P processors.
type Assignment struct {
	// PerProc[i] holds the candidates owned by processor i, still in
	// lexicographic order within each group.
	PerProc [][]itemset.Itemset
	// GroupsOf[i] holds the groups assigned to processor i.
	GroupsOf [][]Group
	// Counts[i] is len(PerProc[i]).
	Counts []int
}

// Imbalance returns (max - mean) / mean over the per-processor candidate
// counts — the "load imbalance in terms of the number of candidate sets"
// the paper reports (1.3 % on 4 processors, 2.3 % on 8).  It returns 0 for
// an empty assignment.
func (a *Assignment) Imbalance() float64 {
	return Imbalance(a.Counts)
}

// Imbalance returns (max - mean) / mean for a slice of non-negative loads.
func Imbalance(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(counts))
	return (float64(max) - mean) / mean
}

// BinPack distributes the sorted candidates over p processors using the
// longest-processing-time heuristic over first-item groups: groups are
// sorted by decreasing size and each is placed on the currently least
// loaded processor.  splitThreshold bounds the size of a single group
// before it is split by second item; pass 0 to use the natural threshold
// ceil(len(cands)/p), the point past which one group alone would overflow
// its processor.
func BinPack(cands []itemset.Itemset, p, splitThreshold int) *Assignment {
	if p < 1 {
		p = 1
	}
	if splitThreshold <= 0 && p > 0 {
		splitThreshold = (len(cands) + p - 1) / p
	}
	groups := Groups(cands, splitThreshold)
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := groups[order[a]], groups[order[b]]
		if ga.Size() != gb.Size() {
			return ga.Size() > gb.Size()
		}
		// Deterministic tie-break keeps runs reproducible.
		if ga.First != gb.First {
			return ga.First < gb.First
		}
		return ga.Second < gb.Second
	})

	asg := &Assignment{
		PerProc:  make([][]itemset.Itemset, p),
		GroupsOf: make([][]Group, p),
		Counts:   make([]int, p),
	}
	for _, gi := range order {
		g := groups[gi]
		// Least-loaded processor; linear scan is fine for P <= a few hundred.
		best := 0
		for i := 1; i < p; i++ {
			if asg.Counts[i] < asg.Counts[best] {
				best = i
			}
		}
		asg.GroupsOf[best] = append(asg.GroupsOf[best], g)
		asg.PerProc[best] = append(asg.PerProc[best], cands[g.Start:g.End]...)
		asg.Counts[best] += g.Size()
	}
	return asg
}

// RoundRobin distributes candidates over p processors the way DD does:
// candidate i goes to processor i mod p.
func RoundRobin(cands []itemset.Itemset, p int) [][]itemset.Itemset {
	if p < 1 {
		p = 1
	}
	out := make([][]itemset.Itemset, p)
	for i, c := range cands {
		out[i%p] = append(out[i%p], c)
	}
	return out
}
