package datagen

import (
	"testing"

	"parapriori/internal/itemset"
)

// TestSourceMatchesGenerate checks the streaming source yields exactly the
// transactions Generate materializes, on every scan.
func TestSourceMatchesGenerate(t *testing.T) {
	p := Defaults()
	p.NumTransactions = 3000
	p.NumItems = 150
	p.Seed = 11
	want, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	src, err := Source(p)
	if err != nil {
		t.Fatal(err)
	}
	info := src.Info()
	if info.NumTxns != p.NumTransactions || info.NumItems != p.NumItems {
		t.Fatalf("Info = %+v, want %d txns over %d items", info, p.NumTransactions, p.NumItems)
	}
	var modeled int64
	for i := 0; i < want.Len(); i++ {
		modeled += int64(want.Transactions[i].Bytes())
	}
	if info.Bytes != modeled {
		t.Errorf("Info.Bytes = %d, want %d", info.Bytes, modeled)
	}
	for scan := 0; scan < 2; scan++ {
		i := 0
		err := src.Blocks(func(blk []itemset.Transaction) error {
			for _, tx := range blk {
				w := want.Transactions[i]
				if tx.ID != w.ID || !tx.Items.Equal(w.Items) {
					t.Fatalf("scan %d txn %d: got %v, want %v", scan, i, tx, w)
				}
				i++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i != want.Len() {
			t.Fatalf("scan %d streamed %d txns, want %d", scan, i, want.Len())
		}
	}
	if _, err := Source(Params{NumTransactions: -1}); err == nil {
		t.Error("invalid params accepted")
	}
}
