package datagen

import (
	"math"
	"testing"

	"parapriori/internal/apriori"
)

func small() Params {
	p := Defaults()
	p.NumTransactions = 3000
	p.NumItems = 200
	p.NumPatterns = 100
	p.AvgTxnLen = 10
	p.AvgPatternLen = 4
	p.Seed = 3
	return p
}

func TestGenerateBasicShape(t *testing.T) {
	p := small()
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != p.NumTransactions {
		t.Fatalf("Len = %d, want %d", d.Len(), p.NumTransactions)
	}
	if d.NumItems < p.NumItems {
		t.Errorf("NumItems = %d, want >= %d", d.NumItems, p.NumItems)
	}
	for i, txn := range d.Transactions {
		if len(txn.Items) == 0 {
			t.Fatalf("transaction %d empty", i)
		}
		if !txn.Items.Valid() {
			t.Fatalf("transaction %d not sorted: %v", i, txn.Items)
		}
		if txn.ID != int64(i) {
			t.Fatalf("transaction %d has ID %d", i, txn.ID)
		}
		for _, it := range txn.Items {
			if int(it) < 0 || int(it) >= p.NumItems {
				t.Fatalf("item %d out of vocabulary", it)
			}
		}
	}
}

func TestAvgLengthNearTarget(t *testing.T) {
	p := small()
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	got := d.AvgLen()
	// The carry/corruption mechanics shift the mean a little; ±40% is the
	// sanity band, the point is it tracks the knob.
	if got < p.AvgTxnLen*0.6 || got > p.AvgTxnLen*1.4 {
		t.Errorf("AvgLen = %v, want near %v", got, p.AvgTxnLen)
	}
	// Longer target yields longer transactions.
	p2 := p
	p2.AvgTxnLen = 20
	d2, err := Generate(p2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.AvgLen() <= got {
		t.Errorf("AvgTxnLen 20 gave mean %v <= %v", d2.AvgLen(), got)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	p := small()
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Transactions {
		if !a.Transactions[i].Items.Equal(b.Transactions[i].Items) {
			t.Fatalf("transaction %d differs between identical seeds", i)
		}
	}
	p.Seed = 99
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Transactions {
		if a.Transactions[i].Items.Equal(c.Transactions[i].Items) {
			same++
		}
	}
	if same == len(a.Transactions) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestPrefixStability(t *testing.T) {
	// Generating more transactions with the same seed extends the sequence
	// (what the scaleup experiments rely on).
	p := small()
	short, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.NumTransactions = p.NumTransactions * 2
	long, err := Generate(p2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range short.Transactions {
		if !short.Transactions[i].Items.Equal(long.Transactions[i].Items) {
			t.Fatalf("prefix diverges at %d", i)
		}
	}
}

func TestPatternsProduceFrequentItemsets(t *testing.T) {
	// The whole point of the generator: planted patterns make non-trivial
	// frequent itemsets of size >= 2 at reasonable support.
	d, err := Generate(small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := apriori.Mine(d, apriori.Params{MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) < 3 {
		t.Fatalf("only %d levels frequent; patterns are not showing up", len(res.Levels))
	}
	if len(res.Levels[1]) < 10 {
		t.Errorf("only %d frequent pairs", len(res.Levels[1]))
	}
}

func TestCorrelationSkewsCooccurrence(t *testing.T) {
	// With zero corruption, pattern items co-occur exactly; the mined
	// pair count at matched supports should exceed an independence model.
	p := small()
	p.CorruptionMean = 0
	p.CorruptionDev = 0
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := apriori.Mine(d, apriori.Params{MinSupport: 0.02, MaxPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) < 2 || len(res.Levels[1]) == 0 {
		t.Error("no frequent pairs with uncorrupted patterns")
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.NumTransactions = -1 },
		func(p *Params) { p.NumItems = 0 },
		func(p *Params) { p.AvgTxnLen = 0 },
		func(p *Params) { p.AvgPatternLen = -2 },
		func(p *Params) { p.NumPatterns = 0 },
		func(p *Params) { p.Correlation = 1.5 },
		func(p *Params) { p.Correlation = -0.1 },
	}
	for i, mutate := range bad {
		p := small()
		mutate(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	g, err := New(small())
	if err != nil {
		t.Fatal(err)
	}
	const mean = 7.5
	const n = 20000
	total := 0
	for i := 0; i < n; i++ {
		total += g.poisson(mean)
	}
	got := float64(total) / n
	if math.Abs(got-mean) > 0.2 {
		t.Errorf("poisson mean = %v, want ~%v", got, mean)
	}
	if g.poisson(0) != 0 || g.poisson(-1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestZeroTransactions(t *testing.T) {
	p := small()
	p.NumTransactions = 0
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d", d.Len())
	}
}
