package datagen

import (
	"parapriori/internal/itemset"
)

// source adapts the generator to itemset.Source: every Blocks call runs a
// fresh, identically seeded Generator, so the stream is re-scannable and
// deterministic without ever materializing the dataset.  The modeled byte
// size in Info is computed lazily with one extra generation pass the first
// time it is asked for.
type source struct {
	p     Params
	bytes int64
	sized bool
}

// Source returns a streaming transaction source for the workload described
// by p.  Spilling it through txstore (or parapriori.WritePartitionedDataset)
// produces a larger-than-memory database while only one block is ever
// resident.
func Source(p Params) (itemset.Source, error) {
	// New validates p and exercises the pattern build; the generator itself
	// is rebuilt per scan.
	if _, err := New(p); err != nil {
		return nil, err
	}
	return &source{p: p}, nil
}

func (s *source) Info() itemset.SourceInfo {
	if !s.sized {
		g, _ := New(s.p)
		for i := 0; i < s.p.NumTransactions; i++ {
			s.bytes += int64(g.Next().Bytes())
		}
		s.sized = true
	}
	return itemset.SourceInfo{
		NumItems: s.p.NumItems,
		NumTxns:  s.p.NumTransactions,
		Bytes:    s.bytes,
	}
}

func (s *source) Blocks(fn func(block []itemset.Transaction) error) error {
	g, err := New(s.p)
	if err != nil {
		return err
	}
	const blockTxns = 4096
	block := make([]itemset.Transaction, 0, blockTxns)
	for i := 0; i < s.p.NumTransactions; i++ {
		block = append(block, g.Next())
		if len(block) == blockTxns {
			if err := fn(block); err != nil {
				return err
			}
			block = block[:0]
		}
	}
	if len(block) > 0 {
		return fn(block)
	}
	return nil
}
