// Package datagen implements the IBM Quest synthetic transaction generator
// described by Agrawal & Srikant (VLDB '94), the tool the paper used to
// build its T15.I6 workloads.  The real Quest code is long gone from
// almaden.ibm.com, so this is a from-scratch implementation of the published
// procedure: maximal potentially frequent patterns with exponentially
// distributed weights, correlation between consecutive patterns, per-pattern
// corruption levels, and Poisson-distributed transaction and pattern sizes.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"parapriori/internal/itemset"
)

// Params mirrors the knobs of the Quest generator.  The zero value is not
// usable; start from Defaults.
type Params struct {
	// NumTransactions is |D|, the number of transactions to generate.
	NumTransactions int
	// NumItems is |I|, the size of the item vocabulary (Quest default 1000).
	NumItems int
	// AvgTxnLen is |T|, the mean transaction size (the paper uses 15).
	AvgTxnLen float64
	// AvgPatternLen is the mean size of the maximal potentially frequent
	// itemsets (the paper uses 6).
	AvgPatternLen float64
	// NumPatterns is |L|, the number of maximal potentially frequent
	// itemsets (Quest default 2000).
	NumPatterns int
	// Correlation is the mean fraction of a pattern inherited from its
	// predecessor (Quest default 0.5).
	Correlation float64
	// CorruptionMean and CorruptionDev parametrize the per-pattern
	// corruption level, drawn from a clamped normal distribution
	// (Quest defaults 0.5 and 0.1).
	CorruptionMean float64
	CorruptionDev  float64
	// Seed makes generation reproducible.
	Seed int64
}

// Defaults returns the parameter set of the paper's workload: average
// transaction length 15 and average pattern length 6 over a 1000-item
// vocabulary, i.e. the T15.I6 family.
func Defaults() Params {
	return Params{
		NumTransactions: 10000,
		NumItems:        1000,
		AvgTxnLen:       15,
		AvgPatternLen:   6,
		NumPatterns:     2000,
		Correlation:     0.5,
		CorruptionMean:  0.5,
		CorruptionDev:   0.1,
		Seed:            1,
	}
}

func (p Params) validate() error {
	switch {
	case p.NumTransactions < 0:
		return fmt.Errorf("datagen: NumTransactions %d < 0", p.NumTransactions)
	case p.NumItems <= 0:
		return fmt.Errorf("datagen: NumItems %d <= 0", p.NumItems)
	case p.AvgTxnLen <= 0:
		return fmt.Errorf("datagen: AvgTxnLen %v <= 0", p.AvgTxnLen)
	case p.AvgPatternLen <= 0:
		return fmt.Errorf("datagen: AvgPatternLen %v <= 0", p.AvgPatternLen)
	case p.NumPatterns <= 0:
		return fmt.Errorf("datagen: NumPatterns %d <= 0", p.NumPatterns)
	case p.Correlation < 0 || p.Correlation > 1:
		return fmt.Errorf("datagen: Correlation %v outside [0, 1]", p.Correlation)
	}
	return nil
}

// pattern is one maximal potentially frequent itemset.
type pattern struct {
	items      itemset.Itemset
	weight     float64 // cumulative weight for sampling
	corruption float64
}

// Generator produces transactions from a fixed pattern table.  Splitting
// table construction from transaction generation lets the scaleup
// experiments draw arbitrarily many transactions from the same underlying
// distribution, as the paper did when it "read the same data set multiple
// times".
type Generator struct {
	p        Params
	rng      *rand.Rand
	patterns []pattern
	nextID   int64
	carry    itemset.Itemset // pattern held over for the next transaction
}

// New builds a Generator, constructing the pattern table.
func New(p Params) (*Generator, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	g := &Generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	g.buildPatterns()
	return g, nil
}

// buildPatterns constructs the |L| potentially frequent itemsets.  Pattern
// sizes are Poisson with mean AvgPatternLen; a fraction of each pattern's
// items (exponentially distributed with mean Correlation) comes from the
// previous pattern, the rest are picked at random; pattern weights are
// exponential with unit mean, normalized to sum to 1 and stored
// cumulatively for binary-search-free sampling.
func (g *Generator) buildPatterns() {
	g.patterns = make([]pattern, g.p.NumPatterns)
	var prev itemset.Itemset
	totalWeight := 0.0
	for i := range g.patterns {
		size := g.poisson(g.p.AvgPatternLen - 1)
		size++ // at least one item
		items := make(map[itemset.Item]struct{}, size)
		if i > 0 && len(prev) > 0 {
			frac := g.rng.ExpFloat64() * g.p.Correlation
			if frac > 1 {
				frac = 1
			}
			take := int(frac * float64(size))
			for j := 0; j < take && j < len(prev); j++ {
				items[prev[g.rng.Intn(len(prev))]] = struct{}{}
			}
		}
		for len(items) < size && len(items) < g.p.NumItems {
			items[itemset.Item(g.rng.Intn(g.p.NumItems))] = struct{}{}
		}
		flat := make([]itemset.Item, 0, len(items))
		for it := range items {
			flat = append(flat, it)
		}
		set := itemset.New(flat...)
		w := g.rng.ExpFloat64()
		totalWeight += w
		corr := g.rng.NormFloat64()*g.p.CorruptionDev + g.p.CorruptionMean
		corr = math.Max(0, math.Min(1, corr))
		g.patterns[i] = pattern{items: set, weight: totalWeight, corruption: corr}
		prev = set
	}
	// Normalize cumulative weights to [0, 1].
	for i := range g.patterns {
		g.patterns[i].weight /= totalWeight
	}
}

// pickPattern samples a pattern index proportionally to weight.
func (g *Generator) pickPattern() *pattern {
	x := g.rng.Float64()
	lo, hi := 0, len(g.patterns)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.patterns[mid].weight < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &g.patterns[lo]
}

// corrupt returns the pattern's items with the Quest corruption applied:
// items are dropped from the (shuffled) pattern while a uniform draw stays
// below the pattern's corruption level.
func (g *Generator) corrupt(p *pattern) itemset.Itemset {
	kept := make([]itemset.Item, len(p.items))
	copy(kept, p.items)
	g.rng.Shuffle(len(kept), func(i, j int) { kept[i], kept[j] = kept[j], kept[i] })
	n := len(kept)
	for n > 0 && g.rng.Float64() < p.corruption {
		n--
	}
	return itemset.New(kept[:n]...)
}

// Next generates one transaction.
func (g *Generator) Next() itemset.Transaction {
	size := g.poisson(g.p.AvgTxnLen-1) + 1
	items := make(map[itemset.Item]struct{}, size)
	add := func(set itemset.Itemset) {
		for _, it := range set {
			items[it] = struct{}{}
		}
	}
	if g.carry != nil {
		add(g.carry)
		g.carry = nil
	}
	for len(items) < size {
		chosen := g.corrupt(g.pickPattern())
		if len(chosen) == 0 {
			continue
		}
		// Quest: if the pattern does not fit in the remaining budget, add it
		// anyway half the time and save it for the next transaction
		// otherwise.
		if len(items)+len(chosen) > size {
			if g.rng.Float64() < 0.5 {
				add(chosen)
			} else {
				g.carry = chosen
			}
			break
		}
		add(chosen)
	}
	if len(items) == 0 {
		items[itemset.Item(g.rng.Intn(g.p.NumItems))] = struct{}{}
	}
	flat := make([]itemset.Item, 0, len(items))
	for it := range items {
		flat = append(flat, it)
	}
	t := itemset.Transaction{ID: g.nextID, Items: itemset.New(flat...)}
	g.nextID++
	return t
}

// Generate produces the full dataset described by p.
func Generate(p Params) (*itemset.Dataset, error) {
	g, err := New(p)
	if err != nil {
		return nil, err
	}
	txns := make([]itemset.Transaction, p.NumTransactions)
	for i := range txns {
		txns[i] = g.Next()
	}
	d := itemset.NewDataset(txns)
	if d.NumItems < p.NumItems {
		d.NumItems = p.NumItems
	}
	return d, nil
}

// MustGenerate is Generate for statically valid parameters.
func MustGenerate(p Params) *itemset.Dataset {
	d, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return d
}

// poisson samples a Poisson variate with the given mean using Knuth's
// product-of-uniforms method, which is exact and fast for the small means
// the generator uses (|T| = 15, |I| = 6).
func (g *Generator) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
