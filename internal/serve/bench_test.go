package serve

import (
	"math/rand"
	"testing"
	"time"

	"parapriori/internal/itemset"
)

// BenchmarkRecommend measures serving latency on a 10⁵-rule index: the
// cache-cold path (every basket unique per iteration window), the cache-hit
// path, and the pooled fan-out path.  The p99 each sub-benchmark reports
// comes from the server's own /metrics histogram — the same surface
// production monitoring reads.
func BenchmarkRecommend(b *testing.B) {
	const (
		nRules  = 100_000
		nItems  = 2_000
		baskets = 4096
	)
	rs := synthRules(nRules, nItems, 42)
	ix := NewIndex(rs, Options{Shards: 8})
	rng := rand.New(rand.NewSource(7))
	qs := make([][]itemset.Item, baskets)
	for i := range qs {
		raw := make([]itemset.Item, 8)
		for j := range raw {
			raw[j] = itemset.Item(rng.Intn(nItems))
		}
		qs[i] = raw
	}

	// run warms the server with one pass over every basket (faulting the
	// fresh index's pages in — "cache cold" means the query cache, not the
	// first touch of 100k rules), resets the metrics so warm-up traffic
	// stays out of the reported percentiles, and measures.
	run := func(b *testing.B, s *Server) {
		b.Helper()
		for _, q := range qs {
			if _, err := s.Recommend(q, 10); err != nil {
				b.Fatal(err)
			}
		}
		s.met.reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Recommend(qs[i%len(qs)], 10); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		m := s.Metrics()
		b.ReportMetric(m.P99LatencyMicros, "p99-µs")
		b.ReportMetric(m.P50LatencyMicros, "p50-µs")
	}

	b.Run("miss", func(b *testing.B) {
		s := NewServer(Options{Shards: 8, CacheSize: -1}) // cache disabled: every query cold
		defer s.Close()
		s.Publish(ix)
		run(b, s)
	})

	b.Run("hit", func(b *testing.B) {
		s := NewServer(Options{Shards: 8, CacheSize: baskets})
		defer s.Close()
		s.Publish(ix)
		run(b, s) // the warm-up pass fills the cache, so the timed pass hits
	})

	b.Run("pooled-miss", func(b *testing.B) {
		s := NewServer(Options{Shards: 8, Workers: 8, CacheSize: -1})
		defer s.Close()
		s.Publish(ix)
		run(b, s)
	})
}

// TestRecommendLatencyBudget is the testable floor under the benchmark: on
// the 10⁵-rule index a cold query must come in far under a millisecond at
// the p99, and the cache-hit path must beat the miss path by ≥ 5×.  The
// thresholds are deliberately loose multiples of what the benchmark
// measures (~tens of µs cold, ~1 µs hot) so a slow CI box cannot flake it,
// while a complexity regression — say the index degrading to a full rule
// scan — still trips it.
func TestRecommendLatencyBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("latency budget needs the full-size index")
	}
	rs := synthRules(100_000, 2_000, 42)
	ix := NewIndex(rs, Options{Shards: 8})
	rng := rand.New(rand.NewSource(9))
	qs := make([][]itemset.Item, 512)
	for i := range qs {
		raw := make([]itemset.Item, 8)
		for j := range raw {
			raw[j] = itemset.Item(rng.Intn(2_000))
		}
		qs[i] = raw
	}

	// One untimed pass faults the freshly built index's pages in — the
	// budget is about steady-state query cost, not first-touch page faults —
	// then three timed passes give the histogram enough samples that a
	// stray scheduler preemption cannot own the p99 rank.
	miss := NewServer(Options{Shards: 8, CacheSize: -1})
	defer miss.Close()
	miss.Publish(ix)
	for _, q := range qs {
		if _, err := miss.Recommend(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	miss.met.reset()
	for pass := 0; pass < 3; pass++ {
		for _, q := range qs {
			if _, err := miss.Recommend(q, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	mm := miss.Metrics()
	if mm.P99LatencyMicros >= 1000 {
		t.Errorf("cold p99 = %.0fµs, budget < 1000µs", mm.P99LatencyMicros)
	}

	hit := NewServer(Options{Shards: 8, CacheSize: len(qs)})
	defer hit.Close()
	hit.Publish(ix)
	warm := time.Now()
	for _, q := range qs {
		if _, err := hit.Recommend(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	missElapsed := time.Since(warm)
	hot := time.Now()
	for _, q := range qs {
		if _, err := hit.Recommend(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	hitElapsed := time.Since(hot)
	if hitElapsed*5 > missElapsed {
		t.Errorf("cache-hit path not ≥5× faster: hits %v vs misses %v", hitElapsed, missElapsed)
	}
}
