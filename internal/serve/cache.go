package serve

import (
	"container/list"
	"sync"

	"parapriori/internal/rules"
)

// lruCache is a size-bounded LRU over query results, keyed by canonical
// basket bytes plus K (see Server.cacheKey).  One cache belongs to exactly
// one snapshot: Publish installs a fresh cache with the new index, so a
// snapshot swap invalidates every cached result by construction — there is
// no cross-generation staleness to reason about and no flush path to get
// wrong.  A single mutex guards the map+list; entries are immutable once
// stored, so the critical sections are pointer moves.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	val []rules.Rule
}

// newLRU returns a cache bounded to capacity entries, or nil when capacity
// is negative (caching disabled).
func newLRU(capacity int) *lruCache {
	if capacity < 0 {
		return nil
	}
	return &lruCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the cached result for key, marking it most recently used.
// The returned slice is shared: callers must treat it as read-only.
func (c *lruCache) get(key string) ([]rules.Rule, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores a result, evicting the least recently used entry when full.
// The value becomes cache-owned: callers must not modify it afterwards.
func (c *lruCache) put(key string, val []rules.Rule) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
