package serve

import (
	"testing"
	"time"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
)

// TestExemplarResolvesInFlight is the exemplar-linkage property: after a
// seeded slow request (forced cache miss plus injected latency), the latency
// histogram's slowest exemplar must carry a span ID that resolves to a
// request span in the always-on flight ring whose cache attribute says
// "miss", with the basket hash and generation matching the request that
// produced it.
func TestExemplarResolvesInFlight(t *testing.T) {
	s := NewServer(Options{Shards: 4, CacheSize: 128})
	defer s.Close()
	s.Publish(NewIndex(synthRules(80, 12, 3), Options{Shards: 4}))

	// Background traffic: the same basket over and over, so the fast path is
	// all cache hits.
	warm := []itemset.Item{1, 2}
	for i := 0; i < 8; i++ {
		if _, err := s.Recommend(warm, 5); err != nil {
			t.Fatal(err)
		}
	}

	// The seeded slow request: a basket nobody asked before (a forced cache
	// miss) with injected latency far above anything the fast path produces.
	const delay = 40 * time.Millisecond
	s.slow = func() { time.Sleep(delay) }
	slowBasket := []itemset.Item{3, 7, 9}
	if _, err := s.Recommend(slowBasket, 5); err != nil {
		t.Fatal(err)
	}
	s.slow = nil

	exs := s.Metrics().Exemplars
	if len(exs) == 0 {
		t.Fatal("no exemplars recorded")
	}
	slowest := exs[0]
	for _, e := range exs[1:] {
		if e.LatencyUs > slowest.LatencyUs {
			slowest = e
		}
	}
	if slowest.LatencyUs < delay.Microseconds() {
		t.Fatalf("slowest exemplar %dµs, want at least the injected %v", slowest.LatencyUs, delay)
	}
	if slowest.Cache != "miss" {
		t.Errorf("slowest exemplar cache = %q, want miss", slowest.Cache)
	}
	if want := BasketHash(itemset.New(slowBasket...)); slowest.BasketHash != want {
		t.Errorf("slowest exemplar basket hash %q, want %q", slowest.BasketHash, want)
	}
	if slowest.Generation != 1 {
		t.Errorf("slowest exemplar generation %d, want 1", slowest.Generation)
	}

	// The linkage that makes the exemplar actionable: its span ID resolves to
	// the causal request span still live in the flight ring.
	tr := s.Flight().Trace()
	var found *obsv.Span
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if sp.Cat != obsv.CatRequest {
			continue
		}
		if v, ok := sp.Arg("link"); ok && v == slowest.SpanID {
			found = sp
			break
		}
	}
	if found == nil {
		t.Fatalf("exemplar span %q does not resolve in the flight ring (%d spans)", slowest.SpanID, len(tr.Spans))
	}
	if v, _ := found.Arg("cache"); v != "miss" {
		t.Errorf("resolved span cache = %q, want miss", v)
	}
	if found.Dur() < delay.Seconds() {
		t.Errorf("resolved span lasted %.6fs, want at least %v", found.Dur(), delay)
	}
}
