package serve

import (
	"encoding/binary"
	"math"
	"sort"

	"parapriori/internal/itemset"
	"parapriori/internal/rules"
)

// RuleGroup is one distinct antecedent and its rules in serving-rank order —
// the unit of index construction, shard placement and delta publishing.  A
// rule set decomposes into groups uniquely (Groups), and a group's canonical
// byte encoding (Canonical) changes exactly when any of its rules change, so
// comparing canonical bytes across two rule sets yields the minimal set of
// groups a distributed publisher must re-ship.
type RuleGroup struct {
	// Key is the antecedent's canonical key (itemset.Key): 4 big-endian
	// bytes per item, so keys sort like Itemset.Compare.
	Key string
	// Ant is the decoded antecedent.
	Ant itemset.Itemset
	// Rules holds the group's rules, sorted by rules.RankLess.
	Rules []rules.Rule
}

// Groups decomposes a rule set into antecedent groups, each rank-sorted,
// ordered by antecedent key.  The decomposition is deterministic for a given
// rule set whatever the input order — the property index construction and
// delta computation both rely on.
func Groups(rs []rules.Rule) []RuleGroup {
	byAnt := make(map[string][]rules.Rule, len(rs))
	for _, r := range rs {
		k := r.Antecedent.Key()
		byAnt[k] = append(byAnt[k], r)
	}
	keys := make([]string, 0, len(byAnt))
	for k := range byAnt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]RuleGroup, 0, len(keys))
	for _, k := range keys {
		grp := byAnt[k]
		sort.Slice(grp, func(i, j int) bool { return rules.RankLess(grp[i], grp[j]) })
		out = append(out, RuleGroup{Key: k, Ant: itemset.KeyToItemset(k), Rules: grp})
	}
	return out
}

// Canonical returns the group's canonical byte encoding: the antecedent key,
// then each rule's consequent key, count and quality measures (IEEE-754
// bits), every variable-length field length-prefixed.  Two groups encode to
// the same bytes iff they hold the same antecedent and the same rules in the
// same rank order, so canonical bytes are the change detector for delta
// publishing — and their length is the natural wire-cost measure of
// shipping the group.
func (g RuleGroup) Canonical() []byte {
	n := 8 + len(g.Key)
	for _, r := range g.Rules {
		n += 8 + 4*len(r.Consequent) + 8 + 4*8
	}
	dst := make([]byte, 0, n)
	dst = binary.AppendUvarint(dst, uint64(len(g.Key)))
	dst = append(dst, g.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(g.Rules)))
	for _, r := range g.Rules {
		dst = binary.AppendUvarint(dst, uint64(4*len(r.Consequent)))
		dst = r.Consequent.AppendKey(dst)
		dst = binary.AppendVarint(dst, r.Count)
		for _, f := range [4]float64{r.Support, r.Confidence, r.Lift, r.Leverage} {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
		}
	}
	return dst
}

// DiffGroups compares the groups of a new rule set against the canonical
// bytes of the previous generation (key → Canonical()) and returns the
// delta: the groups whose bytes changed or appeared (upserts, in key order)
// and the keys that vanished (removes, sorted).  An empty prev map
// degenerates to a full publish: every group is an upsert.
func DiffGroups(prev map[string][]byte, next []RuleGroup) (upserts []RuleGroup, removes []string) {
	seen := make(map[string]bool, len(next))
	for _, g := range next {
		seen[g.Key] = true
		if old, ok := prev[g.Key]; ok && bytesEqual(old, g.Canonical()) {
			continue
		}
		upserts = append(upserts, g)
	}
	for k := range prev {
		if !seen[k] {
			removes = append(removes, k)
		}
	}
	sort.Strings(removes)
	return upserts, removes
}

// bytesEqual avoids importing bytes for one comparison.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
