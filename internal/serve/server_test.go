package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"parapriori/internal/itemset"
	"parapriori/internal/rules"
)

func TestRecommendBeforePublish(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	if _, err := s.Recommend([]itemset.Item{1}, 5); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	if g := s.Generation(); g != 0 {
		t.Fatalf("generation before publish = %d", g)
	}
}

// TestServerMatchesIndex: the server's cached, optionally pooled path must
// return exactly what the bare index returns, on hits and on misses.
func TestServerMatchesIndex(t *testing.T) {
	rs := synthRules(500, 30, 21)
	ix := NewIndex(rs, Options{Shards: 4})
	for _, workers := range []int{0, 3} {
		s := NewServer(Options{Shards: 4, Workers: workers, CacheSize: 64})
		s.Publish(ix)
		rng := rand.New(rand.NewSource(33))
		for q := 0; q < 60; q++ {
			basket := randomBasket(rng, 30, 6)
			k := 1 + rng.Intn(10)
			want := ix.Recommend(basket, k)
			for pass := 0; pass < 2; pass++ { // second pass hits the cache
				got, err := s.Recommend(basket, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers %d pass %d basket %v k %d:\n got %v\nwant %v",
						workers, pass, basket, k, got, want)
				}
			}
		}
		s.Close()
	}
}

// TestRecommendDeterministic: same snapshot + basket + K ⇒ byte-identical
// ranked results, across repeated calls and pooled vs inline execution.
func TestRecommendDeterministic(t *testing.T) {
	rs := synthRules(800, 25, 13)
	ix := NewIndex(rs, Options{Shards: 8})
	inline := NewServer(Options{Shards: 8, CacheSize: -1})
	pooled := NewServer(Options{Shards: 8, Workers: 4, CacheSize: -1})
	defer inline.Close()
	defer pooled.Close()
	inline.Publish(ix)
	pooled.Publish(ix)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 50; q++ {
		basket := randomBasket(rng, 25, 7)
		first, err := inline.Recommend(basket, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%v", first)
		for i := 0; i < 3; i++ {
			a, _ := inline.Recommend(basket, 10)
			b, _ := pooled.Recommend(basket, 10)
			if fmt.Sprintf("%v", a) != want || fmt.Sprintf("%v", b) != want {
				t.Fatalf("nondeterministic results for basket %v", basket)
			}
		}
	}
}

func TestCacheHitCounting(t *testing.T) {
	s := NewServer(Options{Shards: 2, CacheSize: 16})
	defer s.Close()
	s.Publish(NewIndex(synthRules(100, 10, 3), Options{Shards: 2}))
	basket := []itemset.Item{1, 2, 3}
	if _, err := s.Recommend(basket, 5); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.CacheMisses != 1 || m.CacheHits != 0 {
		t.Fatalf("after first query: hits %d misses %d", m.CacheHits, m.CacheMisses)
	}
	// A permutation with duplicates canonicalizes to the same basket, so it
	// must hit.
	if _, err := s.Recommend([]itemset.Item{3, 1, 2, 2}, 5); err != nil {
		t.Fatal(err)
	}
	m = s.Metrics()
	if m.CacheHits != 1 {
		t.Fatalf("canonicalized re-query did not hit: %+v", m)
	}
	// A different K is a different result shape — must miss.
	if _, err := s.Recommend(basket, 6); err != nil {
		t.Fatal(err)
	}
	if m = s.Metrics(); m.CacheMisses != 2 {
		t.Fatalf("K change did not miss: %+v", m)
	}
}

// TestCacheInvalidatedOnSwap: after Publish, previously cached baskets must
// be recomputed against the new index.
func TestCacheInvalidatedOnSwap(t *testing.T) {
	// Two indexes that answer the same basket differently.
	mk := func(cons itemset.Item) *Index {
		return NewIndex([]rules.Rule{{
			Antecedent: itemset.New(1),
			Consequent: itemset.New(cons),
			Support:    0.5, Confidence: 0.9, Lift: 1.5,
		}}, Options{Shards: 2})
	}
	s := NewServer(Options{Shards: 2, CacheSize: 16})
	defer s.Close()
	s.Publish(mk(7))
	basket := []itemset.Item{1}
	got, err := s.Recommend(basket, 5)
	if err != nil || len(got) != 1 || got[0].Consequent[0] != 7 {
		t.Fatalf("gen 1 answer: %v, %v", got, err)
	}
	if _, err := s.Recommend(basket, 5); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.CacheHits != 1 {
		t.Fatalf("warm-up did not hit: %+v", m)
	}

	s.Publish(mk(8))
	got, err = s.Recommend(basket, 5)
	if err != nil || len(got) != 1 || got[0].Consequent[0] != 8 {
		t.Fatalf("post-swap answer still stale: %v, %v", got, err)
	}
	m := s.Metrics()
	if m.CacheMisses != 2 {
		t.Fatalf("swap did not invalidate the cache: %+v", m)
	}
	if m.SnapshotGeneration != 2 {
		t.Fatalf("generation = %d, want 2", m.SnapshotGeneration)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	r := func(n int64) []rules.Rule { return []rules.Rule{{Count: n}} }
	c.put("a", r(1))
	c.put("b", r(2))
	if _, ok := c.get("a"); !ok { // refresh a → b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", r(3)) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being fresh")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Overwriting an existing key must not grow the cache.
	c.put("c", r(4))
	if c.len() != 2 {
		t.Fatalf("len after overwrite = %d, want 2", c.len())
	}
	if v, _ := c.get("c"); v[0].Count != 4 {
		t.Fatalf("overwrite lost: %v", v)
	}
}

func TestLRUDisabled(t *testing.T) {
	if c := newLRU(-1); c != nil {
		t.Fatal("negative capacity should disable the cache")
	}
	// Capacity 0 stores nothing but must not panic.
	c := newLRU(0)
	c.put("a", nil)
	if _, ok := c.get("a"); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

// TestResultAliasing: mutating a returned recommendation must not corrupt
// the cache's copy.
func TestResultAliasing(t *testing.T) {
	s := NewServer(Options{Shards: 2, CacheSize: 8})
	defer s.Close()
	s.Publish(NewIndex(synthRules(50, 8, 5), Options{Shards: 2}))
	basket := []itemset.Item{1, 2, 3, 4}
	a, err := s.Recommend(basket, 5)
	if err != nil || len(a) == 0 {
		t.Fatalf("need a non-empty result for this test: %v %v", a, err)
	}
	want := fmt.Sprintf("%v", a)
	a[0] = rules.Rule{} // caller scribbles over its copy
	b, err := s.Recommend(basket, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", b) != want {
		t.Fatalf("cache entry was aliased to the caller's slice:\n got %v\nwant %s", b, want)
	}
}

func TestKDefaultsAndCap(t *testing.T) {
	rs := synthRules(300, 8, 17) // few items → broad baskets match many rules
	s := NewServer(Options{Shards: 2, MaxK: 7, CacheSize: -1})
	defer s.Close()
	s.Publish(NewIndex(rs, Options{Shards: 2}))
	basket := []itemset.Item{0, 1, 2, 3, 4, 5, 6, 7}
	got, err := s.Recommend(basket, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 7 {
		t.Fatalf("MaxK not enforced: got %d rules", len(got))
	}
	ix := s.Index()
	if want := ix.Recommend(itemset.New(basket...), -1); len(want) > 7 && len(got) != 7 {
		t.Fatalf("expected exactly MaxK=7 results, got %d (available %d)", len(got), len(want))
	}
}
