package serve

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/itemset"
	"parapriori/internal/rules"
)

// synthRules builds a deterministic synthetic rule set: nRules distinct
// (antecedent, consequent) pairs over nItems items with plausible measures.
// Measures are drawn independently, which produces plenty of rank ties to
// exercise the deterministic tie-breaking.
func synthRules(nRules, nItems int, seed int64) []rules.Rule {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, nRules)
	out := make([]rules.Rule, 0, nRules)
	for attempts := 0; len(out) < nRules; attempts++ {
		if attempts > 200*nRules {
			panic(fmt.Sprintf("synthRules: item space of %d too small for %d distinct rules", nItems, nRules))
		}
		raw := make([]itemset.Item, 1+rng.Intn(3))
		for i := range raw {
			raw[i] = itemset.Item(rng.Intn(nItems))
		}
		ant := itemset.New(raw...)
		cons := itemset.New(itemset.Item(rng.Intn(nItems)))
		if len(ant) == 0 || ant.Contains(cons[0]) {
			continue
		}
		key := ant.Key() + "|" + cons.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		conf := float64(1+rng.Intn(20)) / 20 // coarse grid → ties
		sup := float64(1+rng.Intn(50)) / 500
		out = append(out, rules.Rule{
			Antecedent: ant,
			Consequent: cons,
			Count:      int64(1 + rng.Intn(1000)),
			Support:    sup,
			Confidence: conf,
			Lift:       float64(1+rng.Intn(30)) / 10,
			Leverage:   sup - sup*conf,
		})
	}
	return out
}

// oracle is the brute-force subset scan Recommend must match: test every
// rule's antecedent against the basket, drop rules whose consequent is
// already fully in the basket, rank, truncate.
func oracle(rs []rules.Rule, basket itemset.Itemset, k int) []rules.Rule {
	var matches []rules.Rule
	for _, r := range rs {
		if basket.ContainsAll(r.Antecedent) && !basket.ContainsAll(r.Consequent) {
			matches = append(matches, r)
		}
	}
	return RankTruncate(matches, k)
}

func randomBasket(rng *rand.Rand, nItems, maxLen int) itemset.Itemset {
	raw := make([]itemset.Item, 1+rng.Intn(maxLen))
	for i := range raw {
		raw[i] = itemset.Item(rng.Intn(nItems))
	}
	return itemset.New(raw...)
}

// TestRecommendMatchesOracle drives randomized synthetic rule sets and
// baskets through the sharded index and checks exact agreement with the
// brute-force oracle, across shard counts and K values.
func TestRecommendMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rs := synthRules(300, 25, seed)
		for _, shards := range []int{1, 3, 8} {
			ix := NewIndex(rs, Options{Shards: shards})
			rng := rand.New(rand.NewSource(seed * 100))
			for q := 0; q < 50; q++ {
				basket := randomBasket(rng, 25, 6)
				k := 1 + rng.Intn(12)
				got := ix.Recommend(basket, k)
				want := oracle(rs, basket, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d shards %d basket %v k %d:\n got %v\nwant %v",
						seed, shards, basket, k, got, want)
				}
			}
		}
	}
}

// TestRecommendMatchesOracleOnMinedRules repeats the oracle check on rules
// mined from a real (random) transaction database, so the index sees the
// measure distributions rule generation actually produces.
func TestRecommendMatchesOracleOnMinedRules(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var txns []itemset.Transaction
	for i := 0; i < 120; i++ {
		raw := make([]itemset.Item, 2+rng.Intn(5))
		for j := range raw {
			raw[j] = itemset.Item(rng.Intn(12))
		}
		txns = append(txns, itemset.Transaction{ID: int64(i), Items: itemset.New(raw...)})
	}
	res, err := apriori.Mine(itemset.NewDataset(txns), apriori.Params{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.Generate(res, rules.Params{MinConfidence: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no rules mined; workload too sparse for the test")
	}
	ix := NewIndex(rs, Options{Shards: 4})
	for q := 0; q < 80; q++ {
		basket := randomBasket(rng, 12, 5)
		got := ix.Recommend(basket, 10)
		want := oracle(rs, basket, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("basket %v:\n got %v\nwant %v", basket, got, want)
		}
	}
}

// TestIndexBuildDeterministic asserts the index (and its query results) do
// not depend on input rule order or map iteration during construction.
func TestIndexBuildDeterministic(t *testing.T) {
	rs := synthRules(400, 30, 11)
	shuffled := append([]rules.Rule(nil), rs...)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a := NewIndex(rs, Options{Shards: 5})
	b := NewIndex(shuffled, Options{Shards: 5})
	if !reflect.DeepEqual(a.ShardRuleCounts(), b.ShardRuleCounts()) {
		t.Fatalf("shard layout depends on input order: %v vs %v", a.ShardRuleCounts(), b.ShardRuleCounts())
	}
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 40; q++ {
		basket := randomBasket(rng, 30, 6)
		ra := fmt.Sprintf("%v", a.Recommend(basket, 10))
		rb := fmt.Sprintf("%v", b.Recommend(basket, 10))
		if ra != rb {
			t.Fatalf("basket %v: order-dependent results\n a: %s\n b: %s", basket, ra, rb)
		}
	}
	if !reflect.DeepEqual(a.All(), b.All()) {
		t.Fatal("All() depends on input order")
	}
}

// TestIndexAccounting checks NumRules/ShardRuleCounts/All agree and that
// every rule landed on exactly one shard.
func TestIndexAccounting(t *testing.T) {
	rs := synthRules(250, 40, 9)
	ix := NewIndex(rs, Options{Shards: 6})
	if ix.NumRules() != len(rs) {
		t.Fatalf("NumRules = %d, want %d", ix.NumRules(), len(rs))
	}
	if ix.NumShards() != 6 {
		t.Fatalf("NumShards = %d, want 6", ix.NumShards())
	}
	total := 0
	for _, c := range ix.ShardRuleCounts() {
		total += c
	}
	if total != len(rs) {
		t.Fatalf("shard counts sum to %d, want %d", total, len(rs))
	}
	if got := len(ix.All()); got != len(rs) {
		t.Fatalf("All() has %d rules, want %d", got, len(rs))
	}
	for i := 1; i < len(ix.All()); i++ {
		if rules.RankLess(ix.All()[i], ix.All()[i-1]) {
			t.Fatalf("All() unsorted at %d", i)
		}
	}
}

// TestEmptyIndex: an index over zero rules must answer (with nothing)
// rather than fail.
func TestEmptyIndex(t *testing.T) {
	ix := NewIndex(nil, Options{})
	if got := ix.Recommend(itemset.New(1, 2), 5); len(got) != 0 {
		t.Fatalf("empty index recommended %v", got)
	}
	if ix.NumRules() != 0 {
		t.Fatalf("NumRules = %d", ix.NumRules())
	}
}
