package serve

import (
	"hash/fnv"
	"strconv"
	"sync/atomic"
	"time"

	"parapriori/internal/itemset"
)

// exemplarTTL bounds how long a past latency spike pins a bucket's exemplar
// slot: after this age any fresh observation in the bucket takes the slot,
// so exemplars describe *recent* slowness, not an all-time record.
const exemplarTTL = 60 * time.Second

// Exemplar pins one histogram bucket's highest-latency recent request to the
// attributes that explain it: the span link resolvable in the flight ring,
// the basket-key hash, the cache outcome, the snapshot generation, and (for
// router exemplars) the fan-out node set.  A slow p99 seen in /metrics
// resolves through SpanID to its causal spans in /debug/flight.
type Exemplar struct {
	SpanID     string   `json:"span_id"`
	Bucket     int      `json:"bucket"`
	LatencyUs  int64    `json:"latency_us"`
	BasketHash string   `json:"basket_hash"`
	Cache      string   `json:"cache,omitempty"`
	Generation uint64   `json:"generation"`
	Nodes      []string `json:"nodes,omitempty"`
	AgeSeconds float64  `json:"age_seconds"`

	at time.Time
}

// BasketHash returns the hex FNV-1a hash of a basket's canonical itemset
// key — a stable, compact identifier linking an exemplar back to the basket
// shape that produced it without storing the basket itself.
func BasketHash(basket itemset.Itemset) string {
	h := fnv.New64a()
	h.Write(basket.AppendKey(make([]byte, 0, 4*len(basket))))
	return strconv.FormatUint(h.Sum64(), 16)
}

// exemplars is the per-bucket slot array riding beside Hist's counters.
type exemplars [latencyBuckets]atomic.Pointer[Exemplar]

// offer installs ex in its bucket's slot if it beats the incumbent: empty
// slot, higher latency, or an incumbent older than exemplarTTL.
func (xs *exemplars) offer(ex *Exemplar) {
	slot := &xs[ex.Bucket]
	for {
		cur := slot.Load()
		if cur != nil && cur.LatencyUs >= ex.LatencyUs && ex.at.Sub(cur.at) < exemplarTTL {
			return
		}
		if slot.CompareAndSwap(cur, ex) {
			return
		}
	}
}

// snapshot copies the live slots, stamping each copy's age; sorted by
// bucket (slot order), so the output is stable for a quiet histogram.
func (xs *exemplars) snapshot() []Exemplar {
	now := time.Now()
	var out []Exemplar
	for i := range xs {
		if e := xs[i].Load(); e != nil {
			c := *e
			c.AgeSeconds = now.Sub(e.at).Seconds() //checkinv:allow snapshotmut — c is this call's private copy of the loaded exemplar; the published value is untouched
			out = append(out, c)
		}
	}
	return out
}

// reset clears every slot.
func (xs *exemplars) reset() {
	for i := range xs {
		xs[i].Store(nil)
	}
}
