package serve

import (
	"encoding/binary"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/rules"
)

// ErrNoSnapshot is returned by queries before the first Publish.
var ErrNoSnapshot = errors.New("serve: no snapshot published yet")

// snapshot is one immutable serving state: an index, its generation number
// and the query cache built for it.  The Server swaps whole snapshots, so a
// query that loaded one keeps a consistent (index, cache) pair for its full
// lifetime even while a Publish lands mid-flight.
type snapshot struct {
	idx   *Index
	gen   uint64
	cache *lruCache // nil when caching is disabled
}

// Server answers top-K basket queries over the currently published Index.
// Reads are lock-free: the only shared mutable state on the query path is
// one atomic.Pointer load (plus the cache's short mutex when caching is
// on).  Publish is safe to call concurrently with queries from any
// goroutine — that is the hot-reload path.
type Server struct {
	opt    Options
	snap   atomic.Pointer[snapshot]
	met    metrics
	flight *obsv.Flight    // always-on bounded ring of recent spans
	rc     *obsv.RealClock // always non-nil: records into the flight ring, teed with Options.Recorder
	reg    *obsv.Registry
	reqID  atomic.Uint64 // server-local span links for untraced callers
	tasks  chan func()   // nil when Workers == 0
	wg     sync.WaitGroup
	once   sync.Once // guards Close
	slow   func()    // test seam: injected latency on the recommend path
}

// NewServer creates a server with no snapshot; queries fail with
// ErrNoSnapshot until the first Publish.  With opt.Workers > 0 it starts
// the query worker pool; call Close to stop it.
//
// The flight recorder is always on: every request/publish span lands in a
// bounded ring dumpable via /debug/flight or Flight(), teed into
// Options.Recorder when one is installed.
func NewServer(opt Options) *Server {
	opt = opt.WithDefaults()
	s := &Server{opt: opt, flight: obsv.NewFlight(obsv.ClockReal, 0)}
	s.rc = obsv.NewRealClock(obsv.Tee(s.flight, opt.Recorder))
	s.rc.SetMeta("tier", "serve")
	s.reg = obsv.NewRegistry()
	s.reg.Register("serve", s.WriteProm)
	s.met.start = time.Now()
	if opt.Workers > 0 {
		// The pool is real serving concurrency, deliberately outside the
		// simulation's comm layer: queries fan per-shard scans out to a
		// fixed set of workers so one slow scan cannot pile goroutines up.
		s.tasks = make(chan func(), 4*opt.Workers) //checkinv:allow rawchan — serving worker pool, not simulation traffic
		for i := 0; i < opt.Workers; i++ {
			s.wg.Add(1)
			go func() { //checkinv:allow rawchan — pool worker; lifecycle bounded by Close
				defer s.wg.Done()
				for f := range s.tasks { //checkinv:allow rawchan — drains the task queue until Close
					f()
				}
			}()
		}
	}
	return s
}

// Close stops the worker pool, waiting for in-flight tasks.  No queries may
// be issued after Close.  It is a no-op for poolless servers and idempotent.
func (s *Server) Close() {
	s.once.Do(func() {
		if s.tasks != nil {
			close(s.tasks) //checkinv:allow rawchan — pool shutdown
			s.wg.Wait()
		}
	})
}

// Publish atomically swaps the serving snapshot to a freshly built one over
// idx, with a new empty query cache, and returns the new snapshot
// generation.  Queries already executing finish against the snapshot they
// loaded; queries starting after the swap see the new index.  Generations
// increase monotonically from 1.
func (s *Server) Publish(idx *Index) uint64 {
	for {
		old := s.snap.Load()
		gen := uint64(1)
		if old != nil {
			gen = old.gen + 1
		}
		if s.publishAt(old, idx, gen) {
			return gen
		}
	}
}

// PublishAt is Publish with a caller-chosen generation.  The distributed
// tier uses it to stamp every node's snapshot with the cluster-wide publish
// generation, so the generations different nodes report for one query are
// directly comparable.  Callers must keep generations strictly increasing;
// a gen at or below the current snapshot's is rejected (returns false).
func (s *Server) PublishAt(idx *Index, gen uint64) bool {
	for {
		old := s.snap.Load()
		if old != nil && gen <= old.gen {
			return false
		}
		if s.publishAt(old, idx, gen) {
			return true
		}
	}
}

// publishAt attempts one snapshot swap from old to a fresh snapshot at gen.
func (s *Server) publishAt(old *snapshot, idx *Index, gen uint64) bool {
	spanStart := s.rc.Now()
	next := &snapshot{idx: idx, gen: gen, cache: newLRU(s.opt.CacheSize)}
	if s.snap.CompareAndSwap(old, next) {
		s.met.reloads.Add(1)
		s.rc.Record("publish", obsv.CatPublish, 0, spanStart,
			obsv.Int("generation", int64(gen)),
			obsv.Int("rules", int64(idx.NumRules())))
		return true
	}
	return false
}

// Flight returns the server's always-on flight recorder — the bounded ring
// of recently completed request/publish spans behind /debug/flight.
func (s *Server) Flight() *obsv.Flight { return s.flight }

// Registry returns the server's metrics registry.  The serve family is
// pre-registered; callers can graft additional families (e.g. a mining
// Report's counters) onto the same /metrics exposition.
func (s *Server) Registry() *obsv.Registry { return s.reg }

// Generation returns the current snapshot generation, 0 before the first
// Publish.
func (s *Server) Generation() uint64 {
	if snap := s.snap.Load(); snap != nil {
		return snap.gen
	}
	return 0
}

// Index returns the currently served index, or nil before the first
// Publish.
func (s *Server) Index() *Index {
	if snap := s.snap.Load(); snap != nil {
		return snap.idx
	}
	return nil
}

// Recommend returns the top-K rules firing for the basket — antecedent
// contained in the basket, consequent offering at least one new item —
// ranked by confidence, then lift, then support, with deterministic
// tie-breaking (rules.RankLess).  k <= 0 selects DefaultK; k is capped at
// Options.MaxK.  The result is the caller's to keep.
//
// Determinism contract: for a fixed snapshot, basket and K, the returned
// ranking is byte-identical across calls, cache hits or misses, pooled or
// inline execution.
func (s *Server) Recommend(basket []itemset.Item, k int) ([]rules.Rule, error) {
	out, _, err := s.RecommendGen(basket, k)
	return out, err
}

// RecommendGen is Recommend plus the generation of the snapshot the answer
// was computed from — read atomically with the snapshot, so an answer can
// never carry a newer generation than its content (the guarantee the
// distributed router's publish-coherence logic depends on).
func (s *Server) RecommendGen(basket []itemset.Item, k int) ([]rules.Rule, uint64, error) {
	return s.RecommendTraced(basket, k, "")
}

// RecommendTraced is RecommendGen with a caller-propagated span link: the
// request span and the latency-histogram exemplar both carry it, so a slow
// request surfaced in /metrics resolves to its causal spans in the flight
// ring.  The distributed router passes its fan-out link through here; with
// an empty link the server assigns its own "r<n>" ID.
func (s *Server) RecommendTraced(basket []itemset.Item, k int, link string) ([]rules.Rule, uint64, error) {
	if link == "" {
		link = "r" + strconv.FormatUint(s.reqID.Add(1), 10)
	}
	start := time.Now()
	spanStart := s.rc.Now()
	b := itemset.New(basket...)
	cache, results := "off", 0
	var gen uint64
	defer func() {
		s.met.queries.Add(1)
		s.met.latency.ObserveEx(time.Since(start), &Exemplar{
			SpanID:     link,
			BasketHash: BasketHash(b),
			Cache:      cache,
			Generation: gen,
		})
		s.rc.Record("recommend", obsv.CatRequest, 0, spanStart,
			obsv.String("link", link),
			obsv.Int("basket", int64(len(basket))),
			obsv.Int("k", int64(k)),
			obsv.String("cache", cache),
			obsv.Int("results", int64(results)))
	}()

	snap := s.snap.Load()
	if snap == nil {
		cache = "error"
		return nil, 0, ErrNoSnapshot
	}
	gen = snap.gen
	if s.slow != nil {
		s.slow()
	}
	if k <= 0 {
		k = DefaultK
	}
	if k > s.opt.MaxK {
		k = s.opt.MaxK
	}

	var key string
	if snap.cache != nil {
		key = cacheKey(b, k)
		if v, ok := snap.cache.get(key); ok {
			s.met.hits.Add(1)
			cache, results = "hit", len(v)
			return append([]rules.Rule(nil), v...), snap.gen, nil
		}
		s.met.misses.Add(1)
		cache = "miss"
	}

	out := s.query(snap.idx, b, k)
	if snap.cache != nil {
		snap.cache.put(key, out)
	}
	results = len(out)
	return append([]rules.Rule(nil), out...), snap.gen, nil
}

// query runs the per-shard scans — inline, or fanned out across the worker
// pool — and merges them into one ranked, truncated result.  The merge
// sorts with the total-order comparator, so scheduling can reorder the
// scans without ever reordering the answer.
//
//checkinv:hotpath
func (s *Server) query(ix *Index, basket itemset.Itemset, k int) []rules.Rule {
	var matches []rules.Rule
	if s.tasks == nil || len(ix.shards) == 1 {
		for si := range ix.shards {
			matches = ix.shards[si].query(basket, matches)
		}
		return RankTruncate(matches, k)
	}
	per := make([][]rules.Rule, len(ix.shards))
	var wg sync.WaitGroup
	for si := range ix.shards {
		si := si
		wg.Add(1)
		s.tasks <- func() { //checkinv:allow rawchan,hotalloc — fan one query's shard scans out to the pool; one closure per shard is the fan-out itself
			defer wg.Done()
			per[si] = ix.shards[si].query(basket, nil)
		}
	}
	wg.Wait()
	total := 0
	for _, p := range per {
		total += len(p)
	}
	merged := make([]rules.Rule, 0, total)
	for _, p := range per {
		merged = append(merged, p...)
	}
	return RankTruncate(merged, k)
}

// cacheKey builds the canonical cache key: the basket's canonical itemset
// bytes (sorted, deduplicated — so {3,1,1} and {1,3} share an entry)
// followed by K.  Keys are unambiguous because the basket encoding has
// fixed width per item.
func cacheKey(basket itemset.Itemset, k int) string {
	kb := basket.AppendKey(make([]byte, 0, 4*len(basket)+4))
	kb = binary.BigEndian.AppendUint32(kb, uint32(k))
	return string(kb)
}
