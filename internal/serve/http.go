package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/rules"
)

// ruleJSON is the wire form of a rule — the serving layer's rules codec.
// Quality measures ride along in full (support, confidence, and the newer
// lift and leverage), so clients rank or filter without re-deriving
// anything.
type ruleJSON struct {
	Antecedent []itemset.Item `json:"antecedent"`
	Consequent []itemset.Item `json:"consequent"`
	Count      int64          `json:"count"`
	Support    float64        `json:"support"`
	Confidence float64        `json:"confidence"`
	Lift       float64        `json:"lift"`
	Leverage   float64        `json:"leverage"`
}

func toRuleJSON(r rules.Rule) ruleJSON {
	return ruleJSON{
		Antecedent: r.Antecedent,
		Consequent: r.Consequent,
		Count:      r.Count,
		Support:    r.Support,
		Confidence: r.Confidence,
		Lift:       r.Lift,
		Leverage:   r.Leverage,
	}
}

// Handler returns the server's HTTP surface:
//
//	GET  /recommend?items=1,2,3&k=10   top-K rules for a basket
//	GET  /rules?item=5&limit=100       browse the served rule set
//	GET  /healthz                      liveness + generation
//	GET  /metrics                      Metrics as JSON; Prometheus text
//	                                   exposition when Accept: text/plain
//	GET  /debug/flight                 flight-ring dump: recent spans as
//	                                   Perfetto JSON (?format=attrib for the
//	                                   attribution table)
//	POST /reload                       rebuild via the reload callback and hot-swap
//
// reload supplies a freshly built Index on demand (typically re-reading the
// mined result file); nil disables /reload with 501.
func (s *Server) Handler(reload func() (*Index, error)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/recommend", s.handleRecommend)
	mux.HandleFunc("/rules", s.handleRules)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.HandleFunc("/reload", s.reloadHandler(reload))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the response is already committed; nothing to do on error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseItems parses a comma-separated non-negative item list ("1,2,3").
func parseItems(raw string) ([]itemset.Item, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("empty items")
	}
	parts := strings.Split(raw, ",")
	out := make([]itemset.Item, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad item %q", p)
		}
		out = append(out, itemset.Item(v))
	}
	return out, nil
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	basket, err := parseItems(r.URL.Query().Get("items"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "items: %v", err)
		return
	}
	k := 0
	if raw := r.URL.Query().Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k < 0 {
			writeError(w, http.StatusBadRequest, "bad k %q", raw)
			return
		}
	}
	out, gen, err := s.RecommendTraced(basket, k, sanitizeLink(r.URL.Query().Get("link")))
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp := struct {
		Generation uint64         `json:"generation"`
		Basket     []itemset.Item `json:"basket"`
		Rules      []ruleJSON     `json:"rules"`
	}{Generation: gen, Basket: itemset.New(basket...), Rules: make([]ruleJSON, len(out))}
	for i, rr := range out {
		resp.Rules[i] = toRuleJSON(rr)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	snap := s.snap.Load()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "%v", ErrNoSnapshot)
		return
	}
	limit := 100
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", raw)
			return
		}
		limit = v
	}
	filterItem := itemset.Item(-1)
	if raw := r.URL.Query().Get("item"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad item %q", raw)
			return
		}
		filterItem = itemset.Item(v)
	}
	all := snap.idx.All()
	sel := make([]ruleJSON, 0, limit)
	for _, rr := range all {
		if filterItem >= 0 && !rr.Antecedent.Contains(filterItem) && !rr.Consequent.Contains(filterItem) {
			continue
		}
		if len(sel) >= limit {
			break
		}
		sel = append(sel, toRuleJSON(rr))
	}
	writeJSON(w, http.StatusOK, struct {
		Generation uint64     `json:"generation"`
		Total      int        `json:"total"`
		Rules      []ruleJSON `json:"rules"`
	}{Generation: snap.gen, Total: snap.idx.NumRules(), Rules: sel})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	snap := s.snap.Load()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "empty", "generation": 0})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "generation": snap.gen})
}

// WantsProm reports whether the request negotiates the Prometheus text
// exposition instead of JSON: any Accept header mentioning a text/plain or
// OpenMetrics media type (what Prometheus scrapers send) selects text; the
// JSON view stays the default for bare GETs and API clients.
func WantsProm(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if WantsProm(r) {
		w.Header().Set("Content-Type", obsv.ContentType)
		_, _ = w.Write(s.reg.Gather())
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

// sanitizeLink accepts a caller-propagated span link only when it is short
// and plain ([A-Za-z0-9._-], ≤64 bytes); anything else is discarded and the
// server assigns its own ID.
func sanitizeLink(raw string) string {
	if len(raw) == 0 || len(raw) > 64 {
		return ""
	}
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '.' || c == '_' || c == '-'
		if !ok {
			return ""
		}
	}
	return raw
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	WriteFlight(w, s.flight, r.URL.Query().Get("format"))
}

// WriteFlight renders a flight-ring dump for a /debug/flight endpoint: the
// Perfetto trace-event JSON of the retained spans by default, the
// attribution text table for format "attrib".  Shared by the single-server
// and router handlers so every tier's dump is the same byte format as a
// full trace.
func WriteFlight(w http.ResponseWriter, f *obsv.Flight, format string) {
	tr := f.Trace()
	switch format {
	case "", "perfetto", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = obsv.WriteTrace(w, tr)
	case "attrib":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = obsv.WriteAttribution(w, obsv.Attribution(tr))
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want perfetto or attrib)", format)
	}
}

func (s *Server) reloadHandler(reload func() (*Index, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		if reload == nil {
			writeError(w, http.StatusNotImplemented, "no reload source configured")
			return
		}
		idx, err := reload()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "reload: %v", err)
			return
		}
		gen := s.Publish(idx)
		writeJSON(w, http.StatusOK, map[string]any{"generation": gen, "num_rules": idx.NumRules()})
	}
}
