package serve

import (
	"math/bits"
	"sync/atomic"
	"time"

	"parapriori/internal/obsv"
)

// latencyBuckets is the size of the power-of-two latency histogram: bucket
// i counts queries in [2^(i-1), 2^i) microseconds, so 32 buckets cover up
// to ~2^31 µs ≈ 36 minutes — more than any query can take.
const latencyBuckets = 32

// Hist is a lock-free power-of-two latency histogram: concurrent writers
// call Observe on the hot path while readers take percentiles without ever
// pausing them.  The zero value is ready to use.  It is the recording half
// of the server's metrics block, exported so the distributed router can
// track its end-to-end latency with the same machinery.
type Hist struct {
	buckets [latencyBuckets]atomic.Int64
	sumUs   atomic.Int64
	ex      exemplars
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	h.ObserveEx(d, nil)
}

// ObserveEx is Observe plus an exemplar offer: ex (when non-nil) has its
// Bucket, LatencyUs and capture time filled in and is installed as the
// bucket's exemplar if it is slower than — or meaningfully fresher than —
// the incumbent.  The slow tail self-selects: most requests lose the
// comparison and the pointer is garbage immediately.
func (h *Hist) ObserveEx(d time.Duration, ex *Exemplar) {
	us := d.Microseconds()
	b := bits.Len64(uint64(us)) // 0µs → bucket 0, [2^(i-1), 2^i) µs → bucket i
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	h.buckets[b].Add(1)
	h.sumUs.Add(us)
	if ex != nil {
		ex.Bucket, ex.LatencyUs, ex.at = b, us, time.Now() //checkinv:allow snapshotmut — ex is still caller-owned here; it is published only by offer's CAS below
		h.ex.offer(ex)
	}
}

// Exemplars returns the live per-bucket exemplars, lowest bucket first,
// each stamped with its age at snapshot time.
func (h *Hist) Exemplars() []Exemplar {
	return h.ex.snapshot()
}

// Counts returns a snapshot of the per-bucket sample counts, index-aligned
// with UppersSeconds.
func (h *Hist) Counts() []int64 {
	out := make([]int64, latencyBuckets)
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// SumSeconds returns the total observed latency in seconds — the _sum of the
// Prometheus histogram this Hist renders as.
func (h *Hist) SumSeconds() float64 {
	return float64(h.sumUs.Load()) / 1e6
}

// UppersSeconds returns each bucket's upper bound in seconds (bucket i is
// ≤ 2^i µs), the `le` labels of the Prometheus rendering.
func (h *Hist) UppersSeconds() []float64 {
	out := make([]float64, latencyBuckets)
	for i := range out {
		out[i] = float64(int64(1)<<uint(i)) / 1e6
	}
	return out
}

// Percentile returns the p-th latency percentile in microseconds, as the
// upper bound of the histogram bucket holding that rank — an overestimate
// by at most 2×, the usual contract of log-bucketed histograms.  It returns
// 0 before the first sample.
func (h *Hist) Percentile(p float64) float64 {
	var counts [latencyBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(p*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 1
			}
			return float64(int64(1) << uint(i))
		}
	}
	return float64(int64(1) << uint(latencyBuckets-1))
}

// reset clears the histogram and its exemplar slots.
func (h *Hist) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sumUs.Store(0)
	h.ex.reset()
}

// metrics is the server's lock-free counter block.  Every field is an
// atomic: queries touch it on the hot path, and /metrics reads while
// queries run.  Percentiles come from the bucketed histogram, so a reader
// never pauses the writers.
type metrics struct {
	start   time.Time
	queries atomic.Int64
	hits    atomic.Int64
	misses  atomic.Int64
	reloads atomic.Int64
	latency Hist
}

// reset clears the counters and restarts the uptime clock.  Benchmarks use
// it to exclude warm-up traffic from the reported percentiles; it must only
// be called while no queries are in flight.
func (m *metrics) reset() {
	m.start = time.Now()
	m.queries.Store(0)
	m.hits.Store(0)
	m.misses.Store(0)
	m.latency.reset()
}

// percentile returns the p-th latency percentile in microseconds.
func (m *metrics) percentile(p float64) float64 { return m.latency.Percentile(p) }

// Metrics is the JSON view served on /metrics and reused by the benchmarks.
type Metrics struct {
	UptimeSeconds      float64 `json:"uptime_seconds"`
	Queries            int64   `json:"queries"`
	QPS                float64 `json:"qps"`
	P50LatencyMicros   float64 `json:"p50_latency_micros"`
	P99LatencyMicros   float64 `json:"p99_latency_micros"`
	CacheHits          int64   `json:"cache_hits"`
	CacheMisses        int64   `json:"cache_misses"`
	CacheHitRate       float64 `json:"cache_hit_rate"`
	SnapshotGeneration uint64  `json:"snapshot_generation"`
	Reloads            int64   `json:"reloads"`
	NumRules           int     `json:"num_rules"`
	ShardRules         []int   `json:"shard_rules"`
	// Exemplars are the latency histogram's per-bucket slowest recent
	// requests; each SpanID resolves in the /debug/flight ring.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Metrics snapshots the server's counters.  Counters are read individually
// without a global lock, so across-counter consistency is approximate under
// load — the standard trade for a zero-contention metrics surface.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		UptimeSeconds:    time.Since(s.met.start).Seconds(),
		Queries:          s.met.queries.Load(),
		P50LatencyMicros: s.met.percentile(0.50),
		P99LatencyMicros: s.met.percentile(0.99),
		CacheHits:        s.met.hits.Load(),
		CacheMisses:      s.met.misses.Load(),
		Reloads:          s.met.reloads.Load(),
		Exemplars:        s.met.latency.Exemplars(),
	}
	if m.UptimeSeconds > 0 {
		m.QPS = float64(m.Queries) / m.UptimeSeconds
	}
	if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(lookups)
	}
	if snap := s.snap.Load(); snap != nil {
		m.SnapshotGeneration = snap.gen
		m.NumRules = snap.idx.NumRules()
		m.ShardRules = snap.idx.ShardRuleCounts()
	}
	return m
}

// WriteProm renders the server's metrics as Prometheus text exposition — the
// content-negotiated alternative to the JSON view on /metrics.
func (s *Server) WriteProm(w *obsv.PromWriter) {
	m := s.Metrics()
	w.Gauge("parapriori_uptime_seconds", "Seconds since the server started (or metrics were reset).", m.UptimeSeconds)
	w.Counter("parapriori_queries_total", "Basket queries served.", float64(m.Queries))
	w.Counter("parapriori_cache_hits_total", "Query cache hits.", float64(m.CacheHits))
	w.Counter("parapriori_cache_misses_total", "Query cache misses.", float64(m.CacheMisses))
	w.Counter("parapriori_reloads_total", "Snapshot publishes since start.", float64(m.Reloads))
	w.Gauge("parapriori_snapshot_generation", "Generation of the currently served snapshot (0 before the first publish).", float64(m.SnapshotGeneration))
	w.Gauge("parapriori_rules", "Rules in the currently served index.", float64(m.NumRules))
	for i, n := range m.ShardRules {
		w.Gauge("parapriori_shard_rules", "Rules per index shard.", float64(n), obsv.Int("shard", int64(i)))
	}
	w.Histogram("parapriori_query_latency_seconds", "Query latency (power-of-two buckets).",
		s.met.latency.UppersSeconds(), s.met.latency.Counts(), s.met.latency.SumSeconds())
}
