// Package serve is the online half of the pipeline: a low-latency,
// concurrent rule-serving subsystem over the association rules the mining
// side produces.  The batch stage (serial or parallel Apriori plus
// ap-genrules) periodically emits a rule set; this package turns it into an
// immutable, sharded in-memory index and answers basket queries
// ("customers with these items in the cart should see what?") while a
// fresh index can be published at any moment with zero downtime.
//
// The moving parts:
//
//   - Index: an immutable antecedent-keyed rule index.  Rules sharing an
//     antecedent form one group; groups are sharded by a seeded hash of the
//     antecedent and, within a shard, reachable through a per-item inverted
//     index keyed by the antecedent's first (smallest) item.  A basket
//     query visits only groups whose first item is in the basket — every
//     antecedent ⊆ basket has its minimum item in the basket, so no
//     basket-subset enumeration (2^|basket| work) is ever needed, and each
//     matching group is visited exactly once.
//   - Server: holds the current snapshot (index + generation + query
//     cache) behind an atomic.Pointer.  Readers never lock; Publish swaps
//     the whole snapshot, so queries in flight keep the index they started
//     with — the hot-reload protocol.
//   - lruCache: a size-bounded query cache keyed by canonical basket bytes
//     plus K.  The cache lives inside the snapshot, so a swap invalidates
//     it wholesale by construction.
//   - metrics: QPS, latency percentiles, hit rates and snapshot
//     generation, exported as JSON on /metrics.
//
// Unlike the simulation packages, serve runs on the real clock and real
// goroutines: it is a production subsystem, not an emulation.  Its raw
// concurrency sites are individually annotated for the checkinv rawchan
// rule so each one is a deliberate, reviewed decision.
package serve

import (
	"sort"
	"sync"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/rules"
)

// Options configures index construction and the server.
type Options struct {
	// Shards is the number of index shards (default 8).  Antecedent groups
	// are placed by hash, so shards are balanced for rule sets with many
	// distinct antecedents.
	Shards int
	// Workers is the size of the query worker pool.  Zero serves each
	// query by scanning shards inline on the calling goroutine; with
	// Workers > 0, per-shard scans of one query fan out across the pool.
	Workers int
	// CacheSize bounds the per-snapshot query cache in entries (default
	// 1024).  Negative disables caching.
	CacheSize int
	// HashSeed seeds the antecedent→shard placement hash.  Zero selects a
	// fixed default, keeping shard contents reproducible run to run.
	HashSeed uint64
	// MaxK caps a query's K (default 100): a client cannot force a
	// full-index sort by asking for everything.
	MaxK int
	// Recorder, when non-nil, receives a real-time span per request and
	// publish (obsv.CatRequest / obsv.CatPublish), timed on an epoch anchored
	// at server construction.  The server's bounded flight ring (Flight,
	// /debug/flight) records those spans unconditionally; a Recorder here is
	// teed in alongside it for unbounded collection.
	Recorder obsv.Recorder
}

// DefaultK is the result size when a query does not specify K.
const DefaultK = 10

// WithDefaults returns the options with every zero field replaced by its
// default.  The serving layer applies it internally; the distributed tier
// calls it too so router-side query clamping (DefaultK, MaxK) agrees exactly
// with what each node's server will do.
func (o Options) WithDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.HashSeed == 0 {
		o.HashSeed = 0x5ca1ab1e0ddba11
	}
	if o.MaxK <= 0 {
		o.MaxK = 100
	}
	return o
}

// group is one distinct antecedent and its rules, stored as a range into
// the shard's rank-sorted rule slice.
type group struct {
	ant    itemset.Itemset
	lo, hi int32
}

// shard is an immutable slice of the index: the rule groups whose
// antecedents hash here, plus the first-item inverted index over them.
type shard struct {
	rules   []rules.Rule
	groups  []group
	byFirst map[itemset.Item][]int32
}

// Index is an immutable rule index, ready for concurrent basket queries.
// Build one with NewIndex and install it on a Server with Publish.
type Index struct {
	shards []shard
	nRules int

	allOnce sync.Once
	all     []rules.Rule
}

// NewIndex builds an index over the rule set.  The input is grouped by
// antecedent, each group rank-sorted (rules.RankLess) and placed on a shard
// by a seeded hash of the antecedent key; construction is deterministic for
// a given rule set and options whatever the input order.
func NewIndex(rs []rules.Rule, opt Options) *Index {
	opt = opt.WithDefaults()
	ix := &Index{shards: make([]shard, opt.Shards)}
	for _, g := range Groups(rs) {
		sh := &ix.shards[hashKey(opt.HashSeed, g.Key)%uint64(opt.Shards)]
		lo := int32(len(sh.rules))
		sh.rules = append(sh.rules, g.Rules...)
		sh.groups = append(sh.groups, group{ant: g.Ant, lo: lo, hi: int32(len(sh.rules))})
		ix.nRules += len(g.Rules)
	}
	for si := range ix.shards {
		sh := &ix.shards[si]
		sh.byFirst = make(map[itemset.Item][]int32)
		for gi, g := range sh.groups {
			if len(g.ant) == 0 {
				continue // rule generation never emits empty antecedents
			}
			sh.byFirst[g.ant[0]] = append(sh.byFirst[g.ant[0]], int32(gi))
		}
	}
	return ix
}

// NumRules returns the number of rules in the index.
func (ix *Index) NumRules() int { return ix.nRules }

// NumShards returns the shard count the index was built with.
func (ix *Index) NumShards() int { return len(ix.shards) }

// ShardRuleCounts returns the number of rules on each shard.
func (ix *Index) ShardRuleCounts() []int {
	out := make([]int, len(ix.shards))
	for i := range ix.shards {
		out[i] = len(ix.shards[i].rules)
	}
	return out
}

// All returns every rule in serving-rank order.  The slice is computed once
// and shared; callers must not modify it.
func (ix *Index) All() []rules.Rule {
	ix.allOnce.Do(func() {
		all := make([]rules.Rule, 0, ix.nRules)
		for si := range ix.shards {
			all = append(all, ix.shards[si].rules...)
		}
		sort.Slice(all, func(i, j int) bool { return rules.RankLess(all[i], all[j]) })
		ix.all = all
	})
	return ix.all
}

// query appends to dst every rule of the shard that fires for the basket: the
// antecedent is contained in the basket and the consequent recommends at
// least one item the basket does not already hold.  For each basket item the
// inverted index yields the groups whose antecedent *starts* there, so a
// group is tested once and only when its cheapest necessary condition holds.
//
//checkinv:hotpath
func (sh *shard) query(basket itemset.Itemset, dst []rules.Rule) []rules.Rule {
	for _, it := range basket {
		for _, gi := range sh.byFirst[it] {
			g := sh.groups[gi]
			if !basket.ContainsAll(g.ant) {
				continue
			}
			for _, r := range sh.rules[g.lo:g.hi] {
				if !basket.ContainsAll(r.Consequent) {
					dst = append(dst, r)
				}
			}
		}
	}
	return dst
}

// Recommend answers a basket query against this index alone — no cache, no
// worker pool — returning at most k rules in serving-rank order.  It is the
// reference path the Server's cached/pooled path must agree with, and what
// the oracle tests exercise.
//
//checkinv:hotpath
func (ix *Index) Recommend(basket itemset.Itemset, k int) []rules.Rule {
	var matches []rules.Rule
	for si := range ix.shards {
		matches = ix.shards[si].query(basket, matches)
	}
	return RankTruncate(matches, k)
}

// RankTruncate sorts matches into serving-rank order and truncates to k.
// RankLess is a strict total order, so the result is deterministic whatever
// order the per-shard scans delivered the matches in — the property that
// also lets the distributed router merge per-node top-K lists into a global
// top-K bit-identical to a single-node scan.
//
//checkinv:hotpath
func RankTruncate(matches []rules.Rule, k int) []rules.Rule {
	sort.Slice(matches, func(i, j int) bool { return rules.RankLess(matches[i], matches[j]) })
	if k >= 0 && len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

// hashKey hashes an antecedent key for shard placement with a splitmix64
// absorb-per-byte construction — deterministic for a given seed, and
// reseedable per deployment without touching query results (shard placement
// never affects ranking).
func hashKey(seed uint64, key string) uint64 {
	h := seed
	for i := 0; i < len(key); i++ {
		h = splitmix64(h ^ uint64(key[i]))
	}
	return splitmix64(h)
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator, the
// same mixer the fault-injection layer uses for its per-message decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
