package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
)

func newTestServer(t *testing.T, reload func() (*Index, error)) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Options{Shards: 4, Workers: 2, CacheSize: 128})
	ts := httptest.NewServer(s.Handler(reload))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("POST %s: bad JSON %q: %v", path, body, err)
		}
	}
	return resp.StatusCode
}

func TestHealthzRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, nil)
	var h struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
	}
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "empty" {
		t.Fatalf("empty server: code %d body %+v", code, h)
	}
	s.Publish(NewIndex(synthRules(50, 10, 1), Options{Shards: 4}))
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "ok" || h.Generation != 1 {
		t.Fatalf("published server: code %d body %+v", code, h)
	}
}

func TestRecommendRoundTrip(t *testing.T) {
	rs := synthRules(200, 15, 2)
	s, ts := newTestServer(t, nil)

	var e struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, ts, "/recommend?items=1,2", &e); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish code %d", code)
	}

	s.Publish(NewIndex(rs, Options{Shards: 4}))
	for _, bad := range []string{"/recommend", "/recommend?items=", "/recommend?items=1,x", "/recommend?items=-4", "/recommend?items=1&k=-2", "/recommend?items=1&k=x"} {
		if code := getJSON(t, ts, bad, &e); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", bad, code)
		}
	}

	var resp struct {
		Generation uint64         `json:"generation"`
		Basket     []itemset.Item `json:"basket"`
		Rules      []ruleJSON     `json:"rules"`
	}
	if code := getJSON(t, ts, "/recommend?items=3,1,2&k=5", &resp); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if resp.Generation != 1 {
		t.Fatalf("generation %d", resp.Generation)
	}
	if want := itemset.New(1, 2, 3); !want.Equal(itemset.Itemset(resp.Basket)) {
		t.Fatalf("basket echoed as %v", resp.Basket)
	}
	want, err := s.Recommend([]itemset.Item{1, 2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rules) != len(want) {
		t.Fatalf("HTTP returned %d rules, direct call %d", len(resp.Rules), len(want))
	}
	for i, r := range want {
		j := resp.Rules[i]
		if !r.Antecedent.Equal(itemset.Itemset(j.Antecedent)) || !r.Consequent.Equal(itemset.Itemset(j.Consequent)) ||
			j.Confidence != r.Confidence || j.Lift != r.Lift || j.Leverage != r.Leverage {
			t.Fatalf("rule %d mismatch: %+v vs %v", i, j, r)
		}
	}
}

func TestRulesEndpointRoundTrip(t *testing.T) {
	rs := synthRules(120, 12, 4)
	s, ts := newTestServer(t, nil)
	s.Publish(NewIndex(rs, Options{Shards: 4}))

	var resp struct {
		Generation uint64     `json:"generation"`
		Total      int        `json:"total"`
		Rules      []ruleJSON `json:"rules"`
	}
	if code := getJSON(t, ts, "/rules?limit=10", &resp); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if resp.Total != len(rs) || len(resp.Rules) != 10 {
		t.Fatalf("total %d (want %d), page %d (want 10)", resp.Total, len(rs), len(resp.Rules))
	}
	// Item filter: every returned rule mentions the item.
	if code := getJSON(t, ts, "/rules?item=3&limit=1000", &resp); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	for _, j := range resp.Rules {
		if !itemset.Itemset(j.Antecedent).Contains(3) && !itemset.Itemset(j.Consequent).Contains(3) {
			t.Fatalf("filtered rule does not mention item 3: %+v", j)
		}
	}
	var e struct{ Error string }
	if code := getJSON(t, ts, "/rules?limit=x", &e); code != http.StatusBadRequest {
		t.Fatalf("bad limit: code %d", code)
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Publish(NewIndex(synthRules(80, 10, 6), Options{Shards: 4}))
	for i := 0; i < 3; i++ {
		if _, err := s.Recommend([]itemset.Item{1, 2}, 5); err != nil {
			t.Fatal(err)
		}
	}
	var m Metrics
	if code := getJSON(t, ts, "/metrics", &m); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if m.Queries != 3 || m.CacheHits != 2 || m.CacheMisses != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.SnapshotGeneration != 1 || m.NumRules != 80 || len(m.ShardRules) != 4 {
		t.Fatalf("snapshot metrics: %+v", m)
	}
	if m.P99LatencyMicros < m.P50LatencyMicros || m.P99LatencyMicros <= 0 {
		t.Fatalf("latency percentiles: %+v", m)
	}
}

// TestMetricsPromNegotiation: GET /metrics with a Prometheus-style Accept
// header returns the text exposition; bare GETs keep returning JSON.
func TestMetricsPromNegotiation(t *testing.T) {
	rec := obsv.NewCollector(obsv.ClockReal)
	s := NewServer(Options{Shards: 4, CacheSize: 128, Recorder: rec})
	ts := httptest.NewServer(s.Handler(nil))
	t.Cleanup(func() { ts.Close(); s.Close() })
	s.Publish(NewIndex(synthRules(80, 10, 6), Options{Shards: 4}))
	for i := 0; i < 3; i++ {
		if _, err := s.Recommend([]itemset.Item{1, 2}, 5); err != nil {
			t.Fatal(err)
		}
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obsv.ContentType {
		t.Fatalf("Content-Type %q, want %q", ct, obsv.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE parapriori_queries_total counter",
		"parapriori_queries_total 3\n",
		"parapriori_cache_hits_total 2\n",
		"# TYPE parapriori_query_latency_seconds histogram",
		"parapriori_query_latency_seconds_count 3\n",
		`parapriori_shard_rules{shard="0"}`,
		"parapriori_snapshot_generation 1\n",
		"parapriori_rules 80\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Sanity of the format: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) < 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// Without the Accept header the JSON view is unchanged.
	var m Metrics
	if code := getJSON(t, ts, "/metrics", &m); code != http.StatusOK || m.Queries != 3 {
		t.Fatalf("JSON view: code %d metrics %+v", code, m)
	}

	// The recorder saw one request span per query and the publish span.
	tr := rec.Trace()
	reqs, pubs := 0, 0
	for _, sp := range tr.Spans {
		switch sp.Cat {
		case obsv.CatRequest:
			reqs++
			if sp.Name != "recommend" || sp.End < sp.Start {
				t.Errorf("bad request span %+v", sp)
			}
		case obsv.CatPublish:
			pubs++
		}
	}
	if reqs != 3 || pubs != 1 {
		t.Fatalf("spans: %d requests (want 3), %d publishes (want 1)", reqs, pubs)
	}
}

func TestReloadRoundTrip(t *testing.T) {
	reloads := 0
	reload := func() (*Index, error) {
		reloads++
		if reloads == 3 {
			return nil, fmt.Errorf("source went away")
		}
		return NewIndex(synthRules(60+reloads, 10, int64(reloads)), Options{Shards: 4}), nil
	}
	s, ts := newTestServer(t, reload)
	s.Publish(NewIndex(synthRules(50, 10, 99), Options{Shards: 4}))

	var e struct{ Error string }
	if code := getJSON(t, ts, "/reload", &e); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload: code %d, want 405", code)
	}
	var r struct {
		Generation uint64 `json:"generation"`
		NumRules   int    `json:"num_rules"`
	}
	if code := postJSON(t, ts, "/reload", &r); code != http.StatusOK || r.Generation != 2 || r.NumRules != 61 {
		t.Fatalf("first reload: code %d body %+v", code, r)
	}
	if code := postJSON(t, ts, "/reload", &r); code != http.StatusOK || r.Generation != 3 {
		t.Fatalf("second reload: code %d body %+v", code, r)
	}
	if code := postJSON(t, ts, "/reload", &e); code != http.StatusInternalServerError {
		t.Fatalf("failing reload: code %d, want 500", code)
	}
	if got := s.Generation(); got != 3 {
		t.Fatalf("failed reload changed the snapshot: generation %d", got)
	}

	// A server with no reload source refuses politely.
	_, ts2 := newTestServer(t, nil)
	if code := postJSON(t, ts2, "/reload", &e); code != http.StatusNotImplemented {
		t.Fatalf("nil reload: code %d, want 501", code)
	}
}

// TestServerSmoke is the hot-swap load test: ≥1000 concurrent /recommend
// requests race against two /reload hot swaps; every request must succeed,
// and the snapshot generation observed through /metrics must increase
// monotonically.  CI runs it under -race.
func TestServerSmoke(t *testing.T) {
	gen := atomic.Int64{}
	reload := func() (*Index, error) {
		n := gen.Add(1)
		return NewIndex(synthRules(2000, 100, n), Options{Shards: 4}), nil
	}
	s, ts := newTestServer(t, reload)
	first, _ := reload()
	s.Publish(first)

	const (
		clients   = 16
		perClient = 80 // 1280 queries total
	)
	var failures atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{}) //checkinv:allow rawchan — test start barrier
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) { //checkinv:allow rawchan — concurrent test client
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			<-start //checkinv:allow rawchan — test start barrier
			for i := 0; i < perClient; i++ {
				items := fmt.Sprintf("%d,%d,%d", rng.Intn(100), rng.Intn(100), rng.Intn(100))
				resp, err := ts.Client().Get(ts.URL + "/recommend?items=" + items + "&k=5")
				if err != nil {
					failures.Add(1)
					continue
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}(c)
	}

	metricsGen := func() uint64 {
		var m Metrics
		if code := getJSON(t, ts, "/metrics", &m); code != http.StatusOK {
			t.Fatalf("/metrics code %d", code)
		}
		return m.SnapshotGeneration
	}

	close(start) //checkinv:allow rawchan — test start barrier
	gens := []uint64{metricsGen()}
	for swap := 0; swap < 2; swap++ { // two hot swaps while the clients hammer
		var r struct {
			Generation uint64 `json:"generation"`
		}
		if code := postJSON(t, ts, "/reload", &r); code != http.StatusOK {
			t.Fatalf("reload %d: code %d", swap, code)
		}
		gens = append(gens, metricsGen())
	}
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d concurrent queries failed across hot swaps", n, clients*perClient)
	}
	for i := 1; i < len(gens); i++ {
		if gens[i] <= gens[i-1] {
			t.Fatalf("snapshot generation not monotonic through /metrics: %v", gens)
		}
	}
	var m Metrics
	getJSON(t, ts, "/metrics", &m)
	if m.Queries < clients*perClient {
		t.Fatalf("metrics lost queries: %d < %d", m.Queries, clients*perClient)
	}
	if m.SnapshotGeneration != 3 {
		t.Fatalf("final generation %d, want 3", m.SnapshotGeneration)
	}
}

// TestHandlerMethodDiscipline: non-GET on the read endpoints is rejected.
func TestHandlerMethodDiscipline(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Publish(NewIndex(synthRules(10, 5, 8), Options{Shards: 4}))
	for _, path := range []string{"/recommend?items=1", "/rules", "/healthz", "/metrics"} {
		var e struct{ Error string }
		if code := postJSON(t, ts, path, &e); code != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: code %d, want 405", path, code)
		}
	}
}

// TestParseItems covers the query-string item parser directly.
func TestParseItems(t *testing.T) {
	got, err := parseItems(" 3 , 1,2 ")
	if err != nil || !reflect.DeepEqual(got, []itemset.Item{3, 1, 2}) {
		t.Fatalf("parseItems = %v, %v", got, err)
	}
	for _, bad := range []string{"", "  ", "1,,2", "a", "1,-2"} {
		if _, err := parseItems(bad); err == nil {
			t.Fatalf("parseItems(%q) accepted", bad)
		}
	}
}
