package experiments

import (
	"fmt"

	"parapriori/internal/core"
)

// Fig14 reproduces Figure 14: runtime as the transaction count grows with
// M and P fixed (P = 64, HD pinned to an 8×8 grid, pass 3 measured).  CD
// and HD scale linearly in N; IDD's curve rises faster because its load
// imbalance and O(N) transaction movement are paid by every processor.
func Fig14(c Config) (*Result, error) {
	c = c.withDefaults()
	base := c.scaled(8000)
	p := c.procs(64)
	// Anchor the support fraction to a fixed absolute count at the base N
	// so that scaled-down runs keep the same noise floor; the fraction is
	// then held constant across the N sweep, which is what keeps M fixed.
	minsup := 32.0 / float64(base)
	mults := []int{1, 2, 4, 8, 16, 20}
	if c.Quick {
		mults = []int{1, 4}
	}

	res := &Result{
		ID:     "fig14",
		Title:  "Runtime vs transactions (fixed M, P=64, pass 3 only)",
		XLabel: "transactions",
		YLabel: "response time (virtual s)",
		Notes: []string{
			fmt.Sprintf("workload: N swept %dx..%dx of %d transactions, minsup %.3g, HD grid 8x8", mults[0], mults[len(mults)-1], base, minsup),
			"paper: N=1.3M..26.1M, M=0.7M, P=64, HD 8x8 (Fig. 14)",
		},
		TableHeader: []string{"N", "CD", "IDD", "HD"},
	}
	algos := []struct {
		name string
		algo core.Algorithm
	}{{"CD", core.CD}, {"IDD", core.IDD}, {"HD", core.HD}}
	series := make([]Series, len(algos))

	for _, mult := range mults {
		n := base * mult
		data, err := mustGen(baseGen(c, n))
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", n)}
		for i, a := range algos {
			series[i].Name = a.name
			prm := core.Params{
				Algo:    a.algo,
				P:       p,
				Apriori: mineParams(minsup, 3),
			}
			if a.algo == core.HD {
				prm.FixedG = 8
			}
			rep, err := core.Mine(data, prm)
			if err != nil {
				return nil, fmt.Errorf("fig14 %s N=%d: %w", a.name, n, err)
			}
			t := pass3Time(rep)
			series[i].Points = append(series[i].Points, Point{X: float64(n), Y: t})
			row = append(row, fmt.Sprintf("%.4f", t))
		}
		res.TableRows = append(res.TableRows, row)
	}
	res.Series = series
	return res, nil
}
