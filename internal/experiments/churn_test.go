package experiments

import (
	"strconv"
	"testing"
)

// churnColumn pulls one column of the churn table, keyed by header name.
func churnColumn(t *testing.T, res *Result, name string) []string {
	t.Helper()
	col := -1
	for i, h := range res.TableHeader {
		if h == name {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("churn table has no %q column (header %v)", name, res.TableHeader)
	}
	out := make([]string, len(res.TableRows))
	for i, row := range res.TableRows {
		out[i] = row[col]
	}
	return out
}

func churnFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric table cell %q: %v", s, err)
	}
	return v
}

// TestChurnReplicationEliminatesPartials is the experiment-level acceptance
// check: the R=1 row must show partial answers (kill windows orphan shards)
// and the R=2 row exactly zero, with the failover machinery visibly at work.
func TestChurnReplicationEliminatesPartials(t *testing.T) {
	res := runNamed(t, "churn")
	if len(res.TableRows) != 2 {
		t.Fatalf("churn table has %d rows, want 2 (R=1, R=2)", len(res.TableRows))
	}
	partials := churnColumn(t, res, "partials")
	if churnFloat(t, partials[0]) == 0 { //checkinv:allow floatcmp integer counter parsed from the table, exact in float64
		t.Errorf("R=1 churn run reported no partial answers — the kill windows were not observed")
	}
	if got := churnFloat(t, partials[1]); got != 0 { //checkinv:allow floatcmp the invariant IS exactly zero partials
		t.Errorf("R=2 churn run reported %v partial answers, want exactly 0", got)
	}
	if retries := churnColumn(t, res, "retries"); churnFloat(t, retries[1]) == 0 { //checkinv:allow floatcmp integer counter, exact in float64
		t.Errorf("R=2 run recorded no retries — failover never exercised")
	}
	if hedges := churnColumn(t, res, "hedges"); churnFloat(t, hedges[1]) == 0 { //checkinv:allow floatcmp integer counter, exact in float64
		t.Errorf("R=2 run recorded no hedges — the straggler was never raced")
	}
}

// TestChurnHedgingFlattensTail: the straggler-phase tail at R=2 (hedged)
// must come in below R=1 (no alternative replica, waits out the delay).
func TestChurnHedgingFlattensTail(t *testing.T) {
	res := runNamed(t, "churn")
	stallCol := churnColumn(t, res, "stall p99(ms)")
	r1, r2 := churnFloat(t, stallCol[0]), churnFloat(t, stallCol[1])
	// Quick config injects a 15ms stall: R=1 is floored by it.
	if r1 < 15 {
		t.Errorf("R=1 straggler tail %.3fms below the injected 15ms delay", r1)
	}
	if r2 >= r1 {
		t.Errorf("hedging did not flatten the tail: R=2 %.3fms >= R=1 %.3fms", r2, r1)
	}
}

// TestChurnResultHashInvariant: the healed-fleet result hash must agree
// across replication factors (replication changes availability, never
// answers) and across two identically seeded runs.
func TestChurnResultHashInvariant(t *testing.T) {
	a := runNamed(t, "churn")
	ha := churnColumn(t, a, "results")
	if ha[0] != ha[1] {
		t.Errorf("result hash differs between R=1 (%s) and R=2 (%s)", ha[0], ha[1])
	}
	b := runNamed(t, "churn")
	hb := churnColumn(t, b, "results")
	for i := range ha {
		if ha[i] != hb[i] {
			t.Errorf("row %d result hash not reproducible: %s vs %s", i, ha[i], hb[i])
		}
	}
}
