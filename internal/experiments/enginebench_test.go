package experiments

import (
	"bytes"
	"testing"
)

func TestEngineBenchQuick(t *testing.T) {
	cfg := Config{Scale: 0.15, Quick: true, Seed: 7}
	rep, err := EngineBench(cfg)
	if err != nil {
		t.Fatalf("EngineBench: %v", err)
	}
	if rep.Schema != EngineBenchSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	// Quick: 2 datasets × 1 support × 3 engines.
	if want := 2 * 1 * len(rep.Engines); len(rep.Cells) != want {
		t.Fatalf("%d cells, want %d", len(rep.Cells), want)
	}
	shaBySweep := map[string]string{}
	for _, c := range rep.Cells {
		key := c.Dataset
		if prev, ok := shaBySweep[key]; ok && prev != c.ResultSHA {
			t.Errorf("%s: engines disagree on result sha", key)
		}
		shaBySweep[key] = c.ResultSHA
		if c.ResponseSec <= 0 || c.CountSec <= 0 || c.TxnPerSec <= 0 {
			t.Errorf("%s/%s: non-positive timings %+v", c.Dataset, c.Engine, c)
		}
		if c.PassHist.Count == 0 {
			t.Errorf("%s/%s: empty pass histogram", c.Dataset, c.Engine)
		}
		if c.Frequent == 0 || c.Passes < 2 {
			t.Errorf("%s/%s: degenerate workload (frequent=%d passes=%d)", c.Dataset, c.Engine, c.Frequent, c.Passes)
		}
	}
	if want := 2 * 1 * (len(rep.Engines) - 1); len(rep.Speedup) != want {
		t.Fatalf("%d speedups, want %d", len(rep.Speedup), want)
	}
	for _, s := range rep.Speedup {
		if s.CountSpeedup <= 0 || s.ResponseSpeedup <= 0 {
			t.Errorf("%s/%s: non-positive speedup %+v", s.Dataset, s.Engine, s)
		}
	}

	// The JSON bytes are deterministic run to run.
	var a, b bytes.Buffer
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	rep2, err := EngineBench(cfg)
	if err != nil {
		t.Fatalf("EngineBench (2nd): %v", err)
	}
	// Allocation counts can jitter across process states; blank them for
	// the byte comparison — the virtual-clock fields are the contract.
	for i := range rep.Cells {
		rep.Cells[i].SerialAllocs = 0
	}
	for i := range rep2.Cells {
		rep2.Cells[i].SerialAllocs = 0
	}
	a.Reset()
	if err := rep.WriteJSON(&a); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := rep2.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON (2nd): %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same config, different JSON bytes")
	}
}

func TestEngineBenchTable(t *testing.T) {
	res := runNamed(t, "enginebench")
	if len(res.TableRows) == 0 {
		t.Fatal("no rows")
	}
	if len(res.TableHeader) != len(res.TableRows[0]) {
		t.Errorf("header/row width mismatch: %d vs %d", len(res.TableHeader), len(res.TableRows[0]))
	}
}
