package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"parapriori/internal/apriori"
	"parapriori/internal/core"
	"parapriori/internal/datagen"
	"parapriori/internal/itemset"
	"parapriori/internal/txstore"
)

// OutOfCore demonstrates the out-of-core backend's memory story: the same
// CD run over growing databases, once in memory and once streamed from a
// partitioned store, with the peak heap sampled during each mine.  The
// in-memory peak tracks the database size N; the out-of-core peak tracks
// the counting structure plus one block — it stays essentially flat while
// the database grows an order of magnitude.  Mined results are checked
// byte-identical between the backends at every size.
func OutOfCore(c Config) (*Result, error) {
	c = c.withDefaults()
	// The workload is sized so the *database* dominates memory, not the
	// counting structures: high support keeps candidate sets small while N
	// grows an order of magnitude.
	base := c.scaled(30000)
	sizes := []int{base, 4 * base, 10 * base}
	if c.Quick {
		sizes = []int{base, 10 * base}
	}
	procs := c.procs(8)

	res := &Result{
		ID:     "outofcore",
		Title:  "Peak heap vs database size: in-memory vs out-of-core CD",
		XLabel: "transactions",
		YLabel: "peak heap (MB)",
		TableHeader: []string{"txns", "store-MB", "inmem-peak-MB", "ooc-peak-MB",
			"inmem-resp-s", "ooc-resp-s", "identical"},
		Notes: []string{
			fmt.Sprintf("CD on %d procs, minsup 0.05, partitioned store with 64 KiB blocks", procs),
			"peak heap is sampled live during each mine (allocation peak, not RSS); the ooc column must stay ~flat as N grows 10x",
		},
	}
	inmemSeries := Series{Name: "inmem"}
	oocSeries := Series{Name: "ooc"}

	for _, n := range sizes {
		gp := baseGen(c, n)
		dir, err := os.MkdirTemp("", "parapriori-ooc-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		src, err := datagen.Source(gp)
		if err != nil {
			return nil, err
		}
		man, err := txstore.Spill(dir, src, txstore.Options{Partitions: 2 * procs, BlockBytes: 64 << 10})
		if err != nil {
			return nil, fmt.Errorf("experiments: spilling %d txns: %w", n, err)
		}
		store, err := txstore.Open(dir)
		if err != nil {
			return nil, err
		}

		prm := core.Params{
			Algo: core.CD, P: procs,
			Apriori: mineParams(0.05, 3),
		}
		var inmemRep, oocRep *core.Report
		inmemPeak, err := peakHeap(func() error {
			data, err := itemset.Materialize(store)
			if err != nil {
				return err
			}
			inmemRep, err = core.Mine(data, prm)
			return err
		})
		if err != nil {
			return nil, err
		}
		oocPrm := prm
		oocPrm.Backend = core.BackendOOC
		oocPrm.Store = store
		oocPeak, err := peakHeap(func() error {
			var err error
			oocRep, err = core.Mine(nil, oocPrm)
			return err
		})
		if err != nil {
			return nil, err
		}

		identical := resultDigest(inmemRep.Result) == resultDigest(oocRep.Result)
		if !identical {
			return nil, fmt.Errorf("experiments: ooc result diverged from inmem at N=%d", n)
		}
		var storeBytes int64
		for _, pi := range man.Partitions {
			storeBytes += pi.Bytes
		}
		mb := func(b uint64) float64 { return float64(b) / (1 << 20) }
		inmemSeries.Points = append(inmemSeries.Points, Point{X: float64(n), Y: mb(inmemPeak)})
		oocSeries.Points = append(oocSeries.Points, Point{X: float64(n), Y: mb(oocPeak)})
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(storeBytes)/(1<<20)),
			fmt.Sprintf("%.1f", mb(inmemPeak)),
			fmt.Sprintf("%.1f", mb(oocPeak)),
			fmt.Sprintf("%.4f", inmemRep.ResponseTime),
			fmt.Sprintf("%.4f", oocRep.ResponseTime),
			fmt.Sprintf("%v", identical),
		})
	}
	res.Series = []Series{inmemSeries, oocSeries}
	return res, nil
}

// resultDigest hashes a mining result's canonical serialized form.
func resultDigest(res *apriori.Result) [sha256.Size]byte {
	var buf bytes.Buffer
	if err := apriori.WriteResult(&buf, res); err != nil {
		panic(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// peakHeap runs f while sampling the live heap, returning the peak
// HeapAlloc observed above the pre-run baseline.  Sampling peaks is an
// approximation (allocation spikes between samples are missed, and
// HeapAlloc includes not-yet-collected garbage) but it separates "holds
// the database" from "holds a block" by well over an order of magnitude,
// which is the property the experiment demonstrates.
func peakHeap(f func() error) (uint64, error) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	var peak atomic.Uint64
	peak.Store(base)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(500 * time.Microsecond) //checkinv:allow walltime host-side heap sampling, not simulation time
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				if h := s.HeapAlloc; h > peak.Load() {
					peak.Store(h)
				}
			}
		}
	}()
	err := f()
	close(stop)
	<-done
	if err != nil {
		return 0, err
	}
	p := peak.Load()
	if p < base {
		return 0, nil
	}
	return p - base, nil
}
