package experiments

import (
	"fmt"

	"parapriori/internal/core"
	"parapriori/internal/obsv"
)

// Attrib decomposes each formulation's runtime pass by pass from its span
// trace: per-pass compute, send and idle totals plus the critical path (the
// busiest rank's non-idle time — the lower bound on the pass under perfect
// communication).  This is the measured counterpart of the paper's
// qualitative argument for why IDD and HD beat DD: the decomposition shows
// *where* DD's time goes (send and idle during the all-to-all shift) rather
// than just that it is slower.  The trace totals are cross-checked against
// the cluster's own Stats, so the table is guaranteed to account for every
// virtual second the machine spent.
func Attrib(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(4000)
	minsup := 24.0 / float64(n)
	p := c.procs(16)

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "attrib",
		Title:  "Per-pass cost attribution from span traces",
		XLabel: "pass k",
		YLabel: "communication share of pass (send / non-idle)",
		TableHeader: []string{
			"algo", "pass", "compute", "io", "send", "idle", "elapsed", "critpath", "wait",
		},
	}

	type algoCase struct {
		algo core.Algorithm
		name string
	}
	algos := []algoCase{{core.CD, "CD"}, {core.DD, "DD"}, {core.IDD, "IDD"}, {core.HD, "HD"}}
	if c.Quick {
		algos = []algoCase{{core.CD, "CD"}, {core.IDD, "IDD"}}
	}

	for _, a := range algos {
		rec := obsv.NewCollector(obsv.ClockVirtual)
		prm := core.Params{
			Algo:     a.algo,
			P:        p,
			Apriori:  mineParams(minsup, 4),
			Recorder: rec,
		}
		rep, err := core.Mine(data, prm)
		if err != nil {
			return nil, fmt.Errorf("attrib %s: %w", a.name, err)
		}

		costs := obsv.Attribution(rec.Trace())
		series := Series{Name: a.name}
		for _, pc := range costs {
			label := "other"
			if pc.Pass >= 0 {
				label = fmt.Sprintf("k=%d", pc.Pass)
			}
			res.TableRows = append(res.TableRows, []string{
				a.name, label,
				fmt.Sprintf("%.4f", pc.Compute),
				fmt.Sprintf("%.4f", pc.IO),
				fmt.Sprintf("%.4f", pc.Send),
				fmt.Sprintf("%.4f", pc.Idle),
				fmt.Sprintf("%.4f", pc.Elapsed),
				fmt.Sprintf("%.4f", pc.CriticalPath),
				fmt.Sprintf("%.4f", pc.Elapsed-pc.CriticalPath),
			})
			if busy := pc.Compute + pc.IO + pc.Send + pc.Retry; pc.Pass >= 2 && busy > 0 {
				series.Points = append(series.Points, Point{X: float64(pc.Pass), Y: pc.Send / busy})
			}
		}
		res.Series = append(res.Series, series)

		// The attribution must account for every virtual second the cluster
		// charged; a mismatch means spans were dropped or double-counted.
		tot := obsv.TotalCost(costs)
		const tol = 1e-6
		if d := tot.Compute - rep.Total.ComputeTime; d > tol || d < -tol {
			return nil, fmt.Errorf("attrib %s: compute mismatch: trace %.9f vs stats %.9f",
				a.name, tot.Compute, rep.Total.ComputeTime)
		}
		if d := tot.Send - rep.Total.SendTime; d > tol || d < -tol {
			return nil, fmt.Errorf("attrib %s: send mismatch: trace %.9f vs stats %.9f",
				a.name, tot.Send, rep.Total.SendTime)
		}
		if d := tot.Idle - rep.Total.IdleTime; d > tol || d < -tol {
			return nil, fmt.Errorf("attrib %s: idle mismatch: trace %.9f vs stats %.9f",
				a.name, tot.Idle, rep.Total.IdleTime)
		}
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("workload: %d transactions, minsup %.3g, P=%d, passes ≤ 4", n, minsup, p),
		"trace category totals reconcile with cluster.Stats (checked to 1e-6)",
		"wait = elapsed - critpath: pass time not explained by the busiest rank",
	)
	return res, nil
}
