package experiments

import (
	"strconv"
	"testing"
)

// loadgenColumns pulls one column of the loadgen table, keyed by header name.
func loadgenColumns(t *testing.T, res *Result, name string) []string {
	t.Helper()
	col := -1
	for i, h := range res.TableHeader {
		if h == name {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("loadgen table has no %q column (header %v)", name, res.TableHeader)
	}
	out := make([]string, len(res.TableRows))
	for i, row := range res.TableRows {
		out[i] = row[col]
	}
	return out
}

// TestLoadGenDeltaBeatsFull checks the experiment's core claim: when a
// small fraction of antecedent groups changes, the delta publish ships
// measurably fewer canonical bytes than a full re-publish — here, under
// half — at every fleet size.
func TestLoadGenDeltaBeatsFull(t *testing.T) {
	res := runNamed(t, "loadgen")
	deltas := loadgenColumns(t, res, "delta(B)")
	fulls := loadgenColumns(t, res, "full(B)")
	for i := range deltas {
		d, err1 := strconv.ParseInt(deltas[i], 10, 64)
		f, err2 := strconv.ParseInt(fulls[i], 10, 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row %d: unparseable byte columns %q / %q", i, deltas[i], fulls[i])
		}
		if d <= 0 || f <= 0 {
			t.Fatalf("row %d: degenerate byte counts delta=%d full=%d", i, d, f)
		}
		if d >= f/2 {
			t.Errorf("row %d: delta shipped %d bytes, full %d — expected well under half", i, d, f)
		}
	}
	partials := loadgenColumns(t, res, "partial")
	for i, p := range partials {
		if p != "0" {
			t.Errorf("row %d: %s partial results with no faults injected", i, p)
		}
	}
}

// TestLoadGenDeterministicHashes runs the experiment twice with the same
// Config and requires the seed-deterministic columns — placement and
// merged-result hashes, byte counts — to agree exactly.  (Timing columns
// are wall-clock and excluded.)  It also requires every fleet size to
// produce the same result hash: the distributed answers do not depend on
// how many nodes the shards landed on.
func TestLoadGenDeterministicHashes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the load sweep twice; skipped under -short")
	}
	a := runNamed(t, "loadgen")
	b := runNamed(t, "loadgen")
	for _, col := range []string{"nodes", "delta(B)", "full(B)", "placement", "results"} {
		ca := loadgenColumns(t, a, col)
		cb := loadgenColumns(t, b, col)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Errorf("column %q row %d differs across identical runs: %q vs %q", col, i, ca[i], cb[i])
			}
		}
	}
	results := loadgenColumns(t, a, "results")
	for i, r := range results {
		if r != results[0] {
			t.Errorf("result hash differs across fleet sizes: row %d %s vs row 0 %s", i, r, results[0])
		}
	}
}
