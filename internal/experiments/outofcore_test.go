package experiments

import (
	"strconv"
	"testing"
)

func TestOutOfCoreQuick(t *testing.T) {
	res := runNamed(t, "outofcore")
	if len(res.Series) != 2 || res.Series[0].Name != "inmem" || res.Series[1].Name != "ooc" {
		t.Fatalf("series = %+v, want inmem and ooc", res.Series)
	}
	// Quick mode runs the base size and the 10x size.
	if len(res.TableRows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.TableRows))
	}
	for _, s := range res.Series {
		if len(s.Points) != len(res.TableRows) {
			t.Errorf("series %s has %d points, want %d", s.Name, len(s.Points), len(res.TableRows))
		}
	}
	// OutOfCore itself errors on divergence, but pin the reported column too.
	for _, row := range res.TableRows {
		if row[len(row)-1] != "true" {
			t.Errorf("row %v not marked identical", row)
		}
		for _, col := range []int{4, 5} { // response-time columns
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 {
				t.Errorf("row %v column %d: not a positive response time", row, col)
			}
		}
	}
	// The database grows 10x between the rows; the in-memory mine holds all
	// of it, so its peak must grow.  The memory *flatness* of the ooc column
	// only shows at full scale (see cmd/experiments -run outofcore): at the
	// quick workload the counting structures dominate both backends.
	first, last := res.Series[0].Points[0].Y, res.Series[0].Points[len(res.Series[0].Points)-1].Y
	if last <= first {
		t.Errorf("inmem peak did not grow with the database: %.1f -> %.1f MB", first, last)
	}
}
