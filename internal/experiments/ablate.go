package experiments

import (
	"fmt"

	"parapriori/internal/analysis"
	"parapriori/internal/cluster"
	"parapriori/internal/core"
)

// Ablate exercises the design decisions DESIGN.md calls out, beyond what the
// paper's own figures isolate:
//
//  1. HD's G knob — response time across every divisor of P, showing the
//     bowl between the CD corner (G=1) and the IDD corner (G=P) and checking
//     it against Equation 8's window;
//  2. communication ablation — each algorithm on the T3E model vs an Ideal
//     machine with free communication, separating communication overhead
//     (including DD's contention and blocking sends) from computation
//     (redundant work, load imbalance);
//  3. overlap ablation — IDD with and without compute/communication overlap
//     hardware, the paper's "system that cannot perform asynchronous
//     communication" remark.
func Ablate(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(8000)
	p := c.procs(16)
	minsup := 24.0 / float64(n)

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "ablate",
		Title:  "Design ablations: G sweep, communication-free baseline, overlap",
		XLabel: "G (grid rows)",
		YLabel: "response time (virtual s)",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions, minsup %.3g, P=%d", n, minsup, p),
		},
	}

	// 1. G sweep for HD.
	gSweep := Series{Name: "HD(G)"}
	var gRows [][]string
	for g := 1; g <= p; g++ {
		if p%g != 0 {
			continue
		}
		rep, err := core.Mine(data, core.Params{
			Algo:    core.HD,
			P:       p,
			FixedG:  g,
			Apriori: mineParams(minsup, 3),
		})
		if err != nil {
			return nil, fmt.Errorf("ablate HD G=%d: %w", g, err)
		}
		t := pass3Time(rep)
		gSweep.Points = append(gSweep.Points, Point{X: float64(g), Y: t})
		gRows = append(gRows, []string{fmt.Sprintf("HD G=%d", g), fmt.Sprintf("%.4f", t)})
	}
	res.Series = append(res.Series, gSweep)

	// Equation 8's window for this workload.
	var m3 int
	{
		rep, err := core.Mine(data, core.Params{Algo: core.CD, P: p, Apriori: mineParams(minsup, 3)})
		if err != nil {
			return nil, fmt.Errorf("ablate CD: %w", err)
		}
		for _, pass := range rep.Passes {
			if pass.K == 3 {
				m3 = pass.Candidates
			}
		}
	}
	_, hi := analysis.GWindow(analysis.Workload{N: float64(n), M: float64(m3)}, float64(p))
	res.Notes = append(res.Notes, fmt.Sprintf("Equation 8 window for pass 3 (M=%d): G in (1, %.3g)", m3, hi))

	// 2. Communication ablation: T3E vs Ideal for each algorithm.
	res.TableHeader = []string{"configuration", "response (s)"}
	res.TableRows = gRows
	for _, algo := range []core.Algorithm{core.CD, core.DD, core.DDComm, core.IDD, core.HD, core.HPA} {
		for _, machine := range []cluster.Machine{cluster.T3E(), cluster.Ideal()} {
			rep, err := core.Mine(data, core.Params{
				Algo:    algo,
				P:       p,
				Machine: machine,
				Apriori: mineParams(minsup, 3),
			})
			if err != nil {
				return nil, fmt.Errorf("ablate %s on %s: %w", algo, machine.Name, err)
			}
			res.TableRows = append(res.TableRows, []string{
				fmt.Sprintf("%s on %s", algo, machine.Name),
				fmt.Sprintf("%.4f", rep.ResponseTime),
			})
		}
	}

	// 3. Overlap ablation for IDD.
	for _, overlap := range []bool{true, false} {
		machine := cluster.T3E()
		machine.Overlap = overlap
		rep, err := core.Mine(data, core.Params{
			Algo:    core.IDD,
			P:       p,
			Machine: machine,
			Apriori: mineParams(minsup, 3),
		})
		if err != nil {
			return nil, fmt.Errorf("ablate IDD overlap=%v: %w", overlap, err)
		}
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("IDD overlap=%v", overlap),
			fmt.Sprintf("%.4f", rep.ResponseTime),
		})
	}
	return res, nil
}
