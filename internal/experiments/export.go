package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV emits the result's series as long-format CSV
// (experiment,series,x,y) and, when the result carries a table, a second
// CSV section with the table's own header.  The sections have different
// column counts; parse with FieldsPerRecord disabled or split on the second
// header line.  Long format loads directly into any plotting tool.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "series", "x", "y"}); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	for _, s := range r.Series {
		for _, pt := range s.Points {
			rec := []string{r.ID, s.Name, formatFloat(pt.X), formatFloat(pt.Y)}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("experiments: writing CSV: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: flushing CSV: %w", err)
	}
	if len(r.TableRows) == 0 {
		return nil
	}
	tw := csv.NewWriter(w)
	header := append([]string{"experiment"}, r.TableHeader...)
	if err := tw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing CSV table header: %w", err)
	}
	for _, row := range r.TableRows {
		if err := tw.Write(append([]string{r.ID}, row...)); err != nil {
			return fmt.Errorf("experiments: writing CSV table: %w", err)
		}
	}
	tw.Flush()
	if err := tw.Error(); err != nil {
		return fmt.Errorf("experiments: flushing CSV table: %w", err)
	}
	return nil
}

func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }

// jsonResult is the stable JSON shape of a Result.
type jsonResult struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"xLabel,omitempty"`
	YLabel string       `json:"yLabel,omitempty"`
	Notes  []string     `json:"notes,omitempty"`
	Series []jsonSeries `json:"series,omitempty"`
	Table  *jsonTable   `json:"table,omitempty"`
}

type jsonSeries struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

type jsonTable struct {
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// WriteJSON emits the result as a single JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	out := jsonResult{
		ID: r.ID, Title: r.Title, XLabel: r.XLabel, YLabel: r.YLabel, Notes: r.Notes,
	}
	for _, s := range r.Series {
		js := jsonSeries{Name: s.Name, Points: make([][2]float64, len(s.Points))}
		for i, pt := range s.Points {
			js.Points[i] = [2]float64{pt.X, pt.Y}
		}
		out.Series = append(out.Series, js)
	}
	if len(r.TableRows) > 0 {
		out.Table = &jsonTable{Header: r.TableHeader, Rows: r.TableRows}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("experiments: encoding JSON: %w", err)
	}
	return nil
}
