package experiments

import (
	"fmt"

	"parapriori/internal/apriori"
	"parapriori/internal/core"
)

// Table2 reproduces Table II: the processor-grid configuration HD chooses
// at every pass, driven by the candidate count and the threshold m.  The
// paper ran 64 processors with m = 50 K; our threshold is derived from the
// measured pass-2 candidate volume so the dynamic behaviour — a wide grid
// while candidates are plentiful, collapsing to pure CD (1×P) as they thin
// out — shows at the scaled-down workload too.
func Table2(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(6000)
	p := c.procs(64)
	const minsup = 0.003

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}
	// Size the threshold from the serial candidate profile, as a user
	// sizing m to their machine's memory would.
	pre, err := apriori.Mine(data, apriori.Params{MinSupport: minsup, MaxPasses: 2})
	if err != nil {
		return nil, fmt.Errorf("table2 pre-pass: %w", err)
	}
	m2 := 1
	if len(pre.Passes) >= 2 {
		m2 = pre.Passes[1].Candidates
	}
	threshold := m2 / 8
	if threshold < 1 {
		threshold = 1
	}

	rep, err := core.Mine(data, core.Params{
		Algo:        core.HD,
		P:           p,
		Apriori:     mineParams(minsup, 0),
		HDThreshold: threshold,
	})
	if err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}

	res := &Result{
		ID:    "table2",
		Title: "HD processor configuration and candidates per pass",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions, minsup %.3g, P=%d, m=%d", n, minsup, p, threshold),
			"paper: 64 processors, m=50K; configurations 8x8, 64x1, 4x16, 2x32, 2x32, 1x64 (Table II)",
			"GxC means G candidate partitions (rows) by C transaction groups (columns); G=1 is CD, G=P is IDD",
		},
		TableHeader: []string{"pass", "configuration", "candidates", "frequent"},
	}
	for _, pass := range rep.Passes {
		if pass.K < 2 {
			continue
		}
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("%d", pass.K),
			fmt.Sprintf("%dx%d", pass.GridRows, pass.GridCols),
			fmt.Sprintf("%d", pass.Candidates),
			fmt.Sprintf("%d", pass.Frequent),
		})
	}
	return res, nil
}
