package experiments

import (
	"fmt"

	"parapriori/internal/analysis"
	"parapriori/internal/core"
)

// Model compares the Section IV cost equations with the emulated machine:
// for a fixed workload it tabulates, per processor count, the predicted
// and measured response times of CD, DD, IDD and HD (pass 3 only, where
// the equations apply cleanly), plus Equation 8's G window.  The model and
// the emulation share operation-cost constants but the model knows nothing
// about message schedules, so agreement in *shape* (ordering, trends)
// rather than absolute value is the check.
func Model(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(8000)
	// Support anchored to a fixed absolute count (see Fig14).
	minsup := 32.0 / float64(n)
	ps := c.sweep([]int{4, 8, 16, 32, 64})
	if c.Quick {
		// At reduced workloads 64 processors leave only a handful of
		// transactions per processor; compare at machine sizes where the
		// per-processor work is still meaningful.
		ps = []int{4, 16}
	}

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "model",
		Title:  "Section IV cost model vs emulation (pass 3)",
		XLabel: "processors",
		YLabel: "response time (virtual s)",
		TableHeader: []string{
			"P", "CD pred", "CD meas", "DD pred", "DD meas",
			"IDD pred", "IDD meas", "HD pred", "HD meas",
		},
	}

	type measured struct {
		algo core.Algorithm
		name string
	}
	algos := []measured{{core.CD, "CD"}, {core.DD, "DD"}, {core.IDD, "IDD"}, {core.HD, "HD"}}
	predSeries := make([]Series, len(algos))
	measSeries := make([]Series, len(algos))
	var wl analysis.Workload
	var costs analysis.Costs

	for _, p := range ps {
		row := []string{fmt.Sprintf("%d", p)}
		for i, a := range algos {
			predSeries[i].Name = a.name + " pred"
			measSeries[i].Name = a.name + " meas"
			prm := core.Params{
				Algo:    a.algo,
				P:       p,
				Apriori: mineParams(minsup, 3),
			}
			if a.algo == core.HD {
				prm.FixedG = fixedGFor(p)
			}
			rep, err := core.Mine(data, prm)
			if err != nil {
				return nil, fmt.Errorf("model %s P=%d: %w", a.name, p, err)
			}
			t := pass3Time(rep)

			// Derive the model workload symbols from the measured pass.
			var pass *core.PassReport
			for j := range rep.Passes {
				if rep.Passes[j].K == 3 {
					pass = &rep.Passes[j]
				}
			}
			if pass == nil {
				return nil, fmt.Errorf("model %s P=%d: no pass 3", a.name, p)
			}
			m := rep.Params.Machine
			wl = analysis.Workload{
				N: float64(data.Len()),
				M: float64(pass.Candidates),
				I: data.AvgLen(),
				K: 3,
				S: 16,
			}
			costs = analysis.Costs{
				TTravers: m.TTravers,
				TCheck:   m.TCheck,
				TInsert:  m.TInsert,
				TData:    float64(60) / m.Bandwidth, // ~60 bytes per transaction
				TReduce:  m.TReduce,
			}
			var pred float64
			switch a.algo {
			case core.CD:
				pred = analysis.CD(wl, costs, float64(p))
			case core.DD:
				pred = analysis.DD(wl, costs, float64(p))
			case core.IDD:
				pred = analysis.IDD(wl, costs, float64(p))
			case core.HD:
				pred = analysis.HD(wl, costs, float64(p), float64(fixedGFor(p)))
			}
			predSeries[i].Points = append(predSeries[i].Points, Point{X: float64(p), Y: pred})
			measSeries[i].Points = append(measSeries[i].Points, Point{X: float64(p), Y: t})
			row = append(row, fmt.Sprintf("%.4f", pred), fmt.Sprintf("%.4f", t))
		}
		res.TableRows = append(res.TableRows, row)
	}
	lo, hi := analysis.GWindow(wl, float64(ps[len(ps)-1]))
	res.Notes = append(res.Notes,
		fmt.Sprintf("workload: %d transactions, minsup %.3g, pass 3; V(C,L) model with S=16", n, minsup),
		fmt.Sprintf("Equation 8 G window at P=%d: (%.3g, %.3g)", ps[len(ps)-1], lo, hi),
	)
	res.Series = append(append([]Series{}, predSeries...), measSeries...)
	return res, nil
}
