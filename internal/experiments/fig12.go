package experiments

import (
	"fmt"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/core"
	"parapriori/internal/hashtree"
)

// Fig12 reproduces Figure 12: response time on the 16-node IBM SP2 (disk-
// resident database) as the candidate count grows with falling minimum
// support.  CD's hash tree is capped at the per-node memory measured from
// the largest-support point, so at lower supports CD partitions the tree
// and rescans the database — paying tree-rebuild, extra I/O and extra
// reduction costs — while IDD and HD spread the candidates over the
// aggregate memory and pull ahead.  The paper reports CD falling behind by
// 8% at 1 M candidates up to 25% at 11 M.
func Fig12(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(4000)
	p := c.procs(16)
	minsups := []float64{0.006, 0.004, 0.003, 0.002, 0.0015}
	if c.Quick {
		minsups = []float64{0.006, 0.002}
	}

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}

	// Cap CD's per-node memory at what the largest-support run needs, as
	// the paper capped the T3E/SP2 node memory: higher candidate volumes
	// then force partitioned counting.
	pre, err := apriori.Mine(data, apriori.Params{MinSupport: minsups[0]})
	if err != nil {
		return nil, fmt.Errorf("fig12 pre-pass: %w", err)
	}
	capBytes := 0
	for _, pass := range pre.Passes {
		if pass.K < 2 {
			continue
		}
		if b := hashtree.EstimateMemoryBytes(pass.Candidates, pass.K, hashtree.Config{}); b > capBytes {
			capBytes = b
		}
	}

	machine := cluster.SP2()
	machine.MemoryBytes = capBytes

	res := &Result{
		ID:     "fig12",
		Title:  "Response time vs candidate count on the SP2 (CD pays multi-scan I/O)",
		XLabel: "total candidates",
		YLabel: "response time (virtual s)",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions, P=%d, SP2 model, CD tree capped at %d bytes/node", n, p, capBytes),
			"paper: 100K transactions, 16-node SP2, minsup 0.1%..0.025% (Fig. 12)",
		},
		TableHeader: []string{"minsup", "candidates", "CD", "CD scans", "IDD", "HD"},
	}
	cd := Series{Name: "CD"}
	idd := Series{Name: "IDD"}
	hd := Series{Name: "HD"}

	for _, ms := range minsups {
		run := func(algo core.Algorithm) (*core.Report, error) {
			rep, err := core.Mine(data, core.Params{
				Algo:        algo,
				P:           p,
				Machine:     machine,
				Apriori:     mineParams(ms, 0),
				HDThreshold: 2000,
			})
			if err != nil {
				return nil, fmt.Errorf("fig12 %s minsup=%g: %w", algo, ms, err)
			}
			return rep, nil
		}
		cdRep, err := run(core.CD)
		if err != nil {
			return nil, err
		}
		iddRep, err := run(core.IDD)
		if err != nil {
			return nil, err
		}
		hdRep, err := run(core.HD)
		if err != nil {
			return nil, err
		}
		m := float64(totalCandidates(cdRep))
		cd.Points = append(cd.Points, Point{X: m, Y: cdRep.ResponseTime})
		idd.Points = append(idd.Points, Point{X: m, Y: iddRep.ResponseTime})
		hd.Points = append(hd.Points, Point{X: m, Y: hdRep.ResponseTime})

		scans := 0
		for _, pass := range cdRep.Passes {
			scans += pass.TreeParts
		}
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("%.4g", ms),
			fmt.Sprintf("%.0f", m),
			fmt.Sprintf("%.4f", cdRep.ResponseTime),
			fmt.Sprintf("%d", scans),
			fmt.Sprintf("%.4f", iddRep.ResponseTime),
			fmt.Sprintf("%.4f", hdRep.ResponseTime),
		})
	}
	res.Series = []Series{cd, idd, hd}
	return res, nil
}
