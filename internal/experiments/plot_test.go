package experiments

import (
	"strings"
	"testing"
)

func chartFixture() *Result {
	return &Result{
		ID: "figX", Title: "demo", XLabel: "procs", YLabel: "seconds",
		Series: []Series{
			{Name: "CD", Points: []Point{{1, 1}, {2, 1}, {4, 1}, {8, 1}}},
			{Name: "DD", Points: []Point{{1, 1}, {2, 2}, {4, 4}, {8, 8}}},
		},
	}
}

func TestWriteChartBasics(t *testing.T) {
	var sb strings.Builder
	if err := chartFixture().WriteChart(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"figX", "demo", "x: procs, y: seconds", "* = CD", "o = DD", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The flat CD series must appear on the bottom row; DD's max at the top.
	lines := strings.Split(out, "\n")
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 10 {
		t.Fatalf("expected 10 grid rows, got %d", len(gridLines))
	}
	if !strings.Contains(gridLines[0], "o") {
		t.Errorf("top row lacks DD's max: %q", gridLines[0])
	}
	if !strings.Contains(gridLines[len(gridLines)-1], "*") {
		t.Errorf("bottom row lacks CD's flat line: %q", gridLines[len(gridLines)-1])
	}
	// Axis extremes rendered.
	if !strings.Contains(out, "8") || !strings.Contains(out, "1") {
		t.Error("axis extremes missing")
	}
}

func TestWriteChartDegenerate(t *testing.T) {
	empty := &Result{ID: "e"}
	var sb strings.Builder
	if err := empty.WriteChart(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty result produced output: %q", sb.String())
	}
	// A single constant point must not divide by zero.
	one := &Result{ID: "o", Series: []Series{{Name: "A", Points: []Point{{3, 5}}}}}
	sb.Reset()
	if err := one.WriteChart(&sb, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("single point not plotted")
	}
	// Series with no points alongside one with points.
	mixed := &Result{ID: "m", Series: []Series{{Name: "empty"}, {Name: "B", Points: []Point{{1, 1}, {2, 2}}}}}
	sb.Reset()
	if err := mixed.WriteChart(&sb, 30, 8); err != nil {
		t.Fatal(err)
	}
}

func TestWriteChartMinimumSize(t *testing.T) {
	var sb strings.Builder
	if err := chartFixture().WriteChart(&sb, 1, 1); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, l := range strings.Split(sb.String(), "\n") {
		if strings.Contains(l, "|") {
			rows++
		}
	}
	if rows < 8 {
		t.Errorf("minimum height not enforced: %d rows", rows)
	}
}
