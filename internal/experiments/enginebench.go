package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"

	"parapriori/internal/apriori"
	"parapriori/internal/core"
	"parapriori/internal/countengine"
	"parapriori/internal/datagen"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
)

// The counting-engine benchmark: the same parallel CD run, three candidate-
// counting backends, on the virtual clock.  Because virtual time is a pure
// function of measured operation counts × machine constants, the sweep is
// byte-deterministic for a fixed seed — BENCH_mining.json is a tracked perf
// trajectory, not a noisy sample.  The per-cell result SHA proves the
// backends mine bit-identical output; the section breakdown (from the span
// trace) shows *where* each backend's clock goes.

// EngineBenchSchema tags the JSON artifact; bump on incompatible change.
const EngineBenchSchema = "parapriori/enginebench/v1"

// BenchWorkload is one dataset of the mining benchmark sweep.
type BenchWorkload struct {
	// Name labels the dataset in cells ("t12.sparse").
	Name string
	// Gen generates it.
	Gen datagen.Params
	// Supports are the minimum-support points swept on this dataset.
	Supports []float64
}

// BenchWorkloads returns the benchmark datasets: the sparse T12-style
// workload the root micro-benchmarks have always used, and a dense small-
// alphabet workload where transactions hit most candidates — the regime
// where vertical (bitset) counting should shine and hash-tree leaf checks
// are nearly all hits.  Config.Scale scales transaction counts; Quick trims
// each dataset to its first support point.
func BenchWorkloads(c Config) []BenchWorkload {
	c = c.withDefaults()
	sparse := datagen.Defaults()
	sparse.NumTransactions = c.scaled(4000)
	sparse.NumItems = 300
	sparse.NumPatterns = 200
	sparse.AvgTxnLen = 12
	sparse.AvgPatternLen = 4
	sparse.Seed = c.Seed
	dense := datagen.Defaults()
	dense.NumTransactions = c.scaled(1500)
	dense.NumItems = 80
	dense.NumPatterns = 60
	dense.AvgTxnLen = 10
	dense.AvgPatternLen = 4
	dense.Seed = c.Seed + 1
	ws := []BenchWorkload{
		{Name: "t12.sparse", Gen: sparse, Supports: []float64{0.01, 0.005}},
		{Name: "t10.dense", Gen: dense, Supports: []float64{0.03, 0.02}},
	}
	if c.Quick {
		for i := range ws {
			ws[i].Supports = ws[i].Supports[:1]
		}
	}
	return ws
}

// BenchData generates a benchmark workload's dataset.
func BenchData(w BenchWorkload) (*itemset.Dataset, error) {
	return mustGen(w.Gen)
}

// EngineCell is one (dataset, support, engine) measurement.
type EngineCell struct {
	Dataset string  `json:"dataset"`
	Support float64 `json:"support"`
	Engine  string  `json:"engine"`

	Transactions int `json:"transactions"`
	Passes       int `json:"passes"`
	Frequent     int `json:"frequent"`
	// ResultSHA is the SHA-256 of the mined result's WriteResult bytes;
	// identical across engines of the same (dataset, support) by
	// construction — EngineBench fails otherwise.
	ResultSHA string `json:"result_sha256"`

	// Virtual seconds: total response, and the count/build engine sections
	// summed over ranks and passes (from the span trace).
	ResponseSec float64 `json:"response_sec"`
	CountSec    float64 `json:"count_sec"`
	BuildSec    float64 `json:"build_sec"`
	// TxnPerSec is Transactions / ResponseSec on the virtual clock.
	TxnPerSec float64 `json:"txn_per_sec"`

	// Aggregate counting-structure op counters over all passes, in the
	// hash-tree vocabulary every backend maps onto (see countengine.Stats).
	Traversals int64 `json:"traversals"`
	LeafChecks int64 `json:"leaf_checks"`
	Inserts    int64 `json:"inserts"`

	// SerialAllocs is the heap allocations of one serial Mine over the
	// dataset with this engine (minimum over runs, GC paused) — the
	// real-memory counterpart of the virtual numbers, measured once per
	// dataset at its first support point.
	SerialAllocs int64 `json:"serial_allocs_per_run"`

	// PassHist is the distribution of per-rank pass durations (virtual
	// seconds, log-2 buckets).
	PassHist obsv.Histogram `json:"pass_hist"`
}

// EngineSpeedup compares one engine against the hashtree baseline at one
// sweep point: >1 means faster.
type EngineSpeedup struct {
	Dataset         string  `json:"dataset"`
	Support         float64 `json:"support"`
	Engine          string  `json:"engine"`
	CountSpeedup    float64 `json:"count_speedup"`
	ResponseSpeedup float64 `json:"response_speedup"`
}

// EngineBenchReport is the full sweep, the payload of BENCH_mining.json.
type EngineBenchReport struct {
	Schema  string          `json:"schema"`
	Algo    string          `json:"algo"`
	Procs   int             `json:"procs"`
	Machine string          `json:"machine"`
	Scale   float64         `json:"scale"`
	Seed    int64           `json:"seed"`
	Engines []string        `json:"engines"`
	Cells   []EngineCell    `json:"cells"`
	Speedup []EngineSpeedup `json:"speedups"`
}

// WriteJSON writes the report as indented JSON.  Field order is fixed by
// the struct tags and slice order by the sweep, so the bytes are
// deterministic for a deterministic report.
func (r *EngineBenchReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// EngineBench runs the sweep: every registered engine × every workload ×
// every support point, on a parallel CD run (4 emulated T3E processors,
// capped by Config.MaxP).  It fails if any engine's mined result differs
// from the hashtree baseline's — the artifact must never publish a speedup
// bought with wrong answers.
func EngineBench(c Config) (*EngineBenchReport, error) {
	c = c.withDefaults()
	procs := c.procs(4)
	rep := &EngineBenchReport{
		Schema:  EngineBenchSchema,
		Algo:    string(core.CD),
		Procs:   procs,
		Machine: "t3e",
		Scale:   c.Scale,
		Seed:    c.Seed,
		Engines: countengine.Names(),
	}
	for _, w := range BenchWorkloads(c) {
		data, err := BenchData(w)
		if err != nil {
			return nil, err
		}
		allocs := make(map[string]int64)
		for _, eng := range rep.Engines {
			a, err := serialAllocs(data, w.Supports[0], eng)
			if err != nil {
				return nil, fmt.Errorf("experiments: enginebench %s/%s allocs: %w", w.Name, eng, err)
			}
			allocs[eng] = a
		}
		for _, sup := range w.Supports {
			baseline := ""
			var cells []EngineCell
			for _, eng := range rep.Engines {
				cell, err := engineCell(data, w.Name, sup, eng, procs)
				if err != nil {
					return nil, fmt.Errorf("experiments: enginebench %s/%v/%s: %w", w.Name, sup, eng, err)
				}
				cell.SerialAllocs = allocs[eng]
				if eng == countengine.Default {
					baseline = cell.ResultSHA
				}
				cells = append(cells, *cell)
			}
			var base *EngineCell
			for i := range cells {
				if cells[i].Engine == countengine.Default {
					base = &cells[i]
				}
			}
			for _, cell := range cells {
				if cell.ResultSHA != baseline {
					return nil, fmt.Errorf("experiments: enginebench %s/%v: engine %s mined a different result than %s (sha %s vs %s)",
						w.Name, sup, cell.Engine, countengine.Default, cell.ResultSHA, baseline)
				}
				if cell.Engine == countengine.Default {
					continue
				}
				rep.Speedup = append(rep.Speedup, EngineSpeedup{
					Dataset:         cell.Dataset,
					Support:         sup,
					Engine:          cell.Engine,
					CountSpeedup:    ratio(base.CountSec, cell.CountSec),
					ResponseSpeedup: ratio(base.ResponseSec, cell.ResponseSec),
				})
			}
			rep.Cells = append(rep.Cells, cells...)
		}
	}
	return rep, nil
}

// engineCell measures one sweep point: a recorded parallel CD run.
func engineCell(data *itemset.Dataset, dataset string, sup float64, eng string, procs int) (*EngineCell, error) {
	rec := obsv.NewCollector(obsv.ClockVirtual)
	prm := mineParams(sup, 0)
	prm.Engine = eng
	run, err := core.Mine(data, core.Params{
		Algo:     core.CD,
		P:        procs,
		Apriori:  prm,
		Recorder: rec,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := apriori.WriteResult(&buf, run.Result); err != nil {
		return nil, err
	}
	sum := sha256.Sum256(buf.Bytes())
	trace := rec.Trace()
	secs := obsv.SectionSeconds(trace)
	cell := &EngineCell{
		Dataset:      dataset,
		Support:      sup,
		Engine:       eng,
		Transactions: len(data.Transactions),
		Passes:       len(run.Passes),
		Frequent:     run.Result.NumFrequent(),
		ResultSHA:    hex.EncodeToString(sum[:]),
		ResponseSec:  run.ResponseTime,
		CountSec:     secs["count"],
		BuildSec:     secs["build"],
		TxnPerSec:    ratio(float64(len(data.Transactions)), run.ResponseTime),
		PassHist:     obsv.PassHistogram(trace),
	}
	for _, p := range run.Passes {
		cell.Traversals += p.Tree.Traversals
		cell.LeafChecks += p.Tree.LeafChecks
		cell.Inserts += p.Tree.Inserts
	}
	return cell, nil
}

// serialAllocs measures the heap allocations of one serial Mine with the
// engine — the moral equivalent of testing.AllocsPerRun without importing
// package testing into a library.  GC is paused and the minimum of a few
// single runs taken, so a deterministic miner yields a deterministic count
// (a concurrent GC cycle can otherwise charge a stray allocation to the
// window).
func serialAllocs(data *itemset.Dataset, sup float64, eng string) (int64, error) {
	prm := mineParams(sup, 0)
	prm.Engine = eng
	mine := func() error {
		_, err := apriori.Mine(data, prm)
		return err
	}
	if err := mine(); err != nil { // warm-up, and the only error check
		return 0, err
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	best := int64(-1)
	var before, after runtime.MemStats
	for i := 0; i < 3; i++ {
		runtime.ReadMemStats(&before)
		mine()
		runtime.ReadMemStats(&after)
		if n := int64(after.Mallocs - before.Mallocs); best < 0 || n < best {
			best = n
		}
	}
	return best, nil
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// EngineBenchTable wraps the sweep as a registry experiment so
// cmd/experiments and the benchmark harness can run it.
func EngineBenchTable(c Config) (*Result, error) {
	rep, err := EngineBench(c)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "enginebench",
		Title: "Counting-engine comparison (hashtree vs trie vs bitset), parallel CD",
		Notes: []string{
			fmt.Sprintf("algo=%s p=%d machine=%s seed=%d scale=%g", rep.Algo, rep.Procs, rep.Machine, rep.Seed, rep.Scale),
			"count/build are engine-section virtual seconds summed over ranks; sha identical across engines per sweep point",
		},
		TableHeader: []string{"dataset", "minsup", "engine", "response_s", "count_s", "build_s", "txn/s", "allocs", "sha"},
	}
	for _, c := range rep.Cells {
		res.TableRows = append(res.TableRows, []string{
			c.Dataset,
			fmt.Sprintf("%.4g", c.Support),
			c.Engine,
			fmt.Sprintf("%.6f", c.ResponseSec),
			fmt.Sprintf("%.6f", c.CountSec),
			fmt.Sprintf("%.6f", c.BuildSec),
			fmt.Sprintf("%.0f", c.TxnPerSec),
			fmt.Sprintf("%d", c.SerialAllocs),
			c.ResultSHA[:12],
		})
	}
	for _, s := range rep.Speedup {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s minsup=%.4g %s: count ×%.2f, response ×%.2f vs %s",
			s.Dataset, s.Support, s.Engine, s.CountSpeedup, s.ResponseSpeedup, countengine.Default))
	}
	return res, nil
}
