package experiments

import (
	"fmt"
	"strings"

	"parapriori/internal/cluster"
	"parapriori/internal/core"
)

// Faults measures what fault tolerance costs on the virtual clock: a sweep
// over message-loss rate × straggler slowdown × crash time, run for each
// grid formulation (CD, IDD, HD) against its own fault-free baseline.
//
// The reported overhead is ResponseTime(faulty) / ResponseTime(fault-free);
// the table adds the raw recovery accounting (restarts, retried/dropped
// messages, retry time, ranks lost).  Crash times are specified as a
// fraction of each algorithm's fault-free clock so the crash always lands
// mid-mining regardless of workload scale.  Everything is driven by the
// deterministic fault plan of package cluster: rerunning with the same
// Config reproduces the numbers bit for bit.
func Faults(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(2000)
	const minsup = 0.01
	const p = 8

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}

	algos := []core.Algorithm{core.CD, core.IDD, core.HD}
	params := func(a core.Algorithm) core.Params {
		return core.Params{
			Algo:        a,
			P:           p,
			Apriori:     mineParams(minsup, 0),
			HDThreshold: 2000,
		}
	}

	// Fault-free baselines, one per formulation.
	base := map[core.Algorithm]float64{}
	for _, a := range algos {
		rep, err := core.Mine(data, params(a))
		if err != nil {
			return nil, fmt.Errorf("faults baseline %s: %w", a, err)
		}
		base[a] = rep.ResponseTime
	}

	// The three fault axes.  A crash fraction of 0 means no crash; a
	// slowdown of 1 means no straggler.
	losses := []float64{0, 0.02, 0.08}
	slows := []float64{1, 4}
	crashes := []float64{0, 0.3}
	if c.Quick {
		losses = []float64{0, 0.08}
	}

	res := &Result{
		ID:     "faults",
		Title:  "Recovery overhead under loss/straggler/crash faults (CD, IDD, HD)",
		XLabel: "fault configuration #",
		YLabel: "response time / fault-free response time",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions, minsup %.3g, P=%d, T3E model", n, minsup, p),
			"crash@ is the crash time as a fraction of the algorithm's fault-free clock (transient, rank 2)",
			"straggler: rank 1 slowed by the given factor from t=0; loss also duplicates and reorders at half the rate",
		},
		TableHeader: []string{"#", "loss", "slow", "crash@", "algo", "resp(s)", "overhead", "restarts", "retried", "dropped", "retry(s)", "lost"},
	}
	series := make([]Series, len(algos))
	for i, a := range algos {
		series[i].Name = strings.ToUpper(string(a))
	}

	cfg := 0
	for _, loss := range losses {
		for _, slow := range slows {
			for _, crashFrac := range crashes {
				cfg++
				for i, a := range algos {
					plan := &cluster.FaultPlan{
						Seed:    uint64(c.Seed)*1009 + uint64(cfg),
						Drop:    loss,
						Dup:     loss / 2,
						Reorder: loss / 2,
					}
					if slow > 1 {
						plan.Stragglers = []cluster.Straggler{{Rank: 1, At: 0, Factor: slow}}
					}
					if crashFrac > 0 {
						plan.Crashes = []cluster.Crash{{Rank: 2, At: crashFrac * base[a]}}
					}
					prm := params(a)
					prm.Faults = plan
					rep, err := core.Mine(data, prm)
					if err != nil {
						return nil, fmt.Errorf("faults cfg %d %s: %w", cfg, a, err)
					}
					over := rep.ResponseTime / base[a]
					series[i].Points = append(series[i].Points, Point{X: float64(cfg), Y: over})
					res.TableRows = append(res.TableRows, []string{
						fmt.Sprintf("%d", cfg),
						fmt.Sprintf("%.2f", loss),
						fmt.Sprintf("%.0fx", slow),
						fmt.Sprintf("%.2f", crashFrac),
						series[i].Name,
						fmt.Sprintf("%.4f", rep.ResponseTime),
						fmt.Sprintf("%.3f", over),
						fmt.Sprintf("%d", rep.Restarts),
						fmt.Sprintf("%d", rep.Total.MessagesRetried),
						fmt.Sprintf("%d", rep.Total.MessagesDropped),
						fmt.Sprintf("%.4f", rep.Total.RetryTime),
						fmt.Sprintf("%v", rep.LostRanks),
					})
				}
			}
		}
	}
	res.Series = series
	return res, nil
}
