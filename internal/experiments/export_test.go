package experiments

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := chartFixture()
	r.TableHeader = []string{"P", "CD"}
	r.TableRows = [][]string{{"1", "0.5"}, {"2", "0.6"}}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	cr := csv.NewReader(strings.NewReader(sb.String()))
	cr.FieldsPerRecord = -1 // two sections: series records, then table records
	recs, err := cr.ReadAll()
	if err != nil {
		t.Fatalf("output is not parseable CSV: %v", err)
	}
	// 1 header + 8 points + 1 table header + 2 table rows = 12 records.
	if len(recs) != 12 {
		t.Fatalf("got %d records, want 12", len(recs))
	}
	if recs[0][1] != "series" || recs[1][0] != "figX" || recs[1][1] != "CD" {
		t.Errorf("unexpected head records: %v, %v", recs[0], recs[1])
	}
	if recs[9][0] != "experiment" || recs[9][1] != "P" {
		t.Errorf("table header record: %v", recs[9])
	}
}

func TestWriteCSVNoTable(t *testing.T) {
	r := chartFixture()
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Errorf("got %d records, want 9", len(recs))
	}
}

func TestWriteJSON(t *testing.T) {
	r := chartFixture()
	r.Notes = []string{"a note"}
	r.TableHeader = []string{"h"}
	r.TableRows = [][]string{{"v"}}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID     string `json:"id"`
		Series []struct {
			Name   string       `json:"name"`
			Points [][2]float64 `json:"points"`
		} `json:"series"`
		Table *struct {
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
		} `json:"table"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.ID != "figX" || len(got.Series) != 2 || got.Series[1].Points[3][1] != 8 { //checkinv:allow floatcmp JSON round trip of an exact integer
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.Table == nil || got.Table.Rows[0][0] != "v" {
		t.Errorf("table lost: %+v", got.Table)
	}
	if len(got.Notes) != 1 {
		t.Errorf("notes lost: %v", got.Notes)
	}
}
