// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): the scaleup, speedup, sizeup and candidate-
// scaling studies on the emulated Cray T3E and IBM SP2 machines.
//
// Each experiment is a function from a Config to a Result holding the same
// series/rows the paper plots; cmd/experiments renders them as text and
// bench_test.go wraps each in a benchmark.  Absolute times come from the
// virtual-time cost model and are not meant to match a 1997 supercomputer —
// the reproduced quantity is the *shape*: who wins, by what factor, and
// where the crossovers fall (see EXPERIMENTS.md for the comparison).
package experiments

import (
	"fmt"
	"io"
	"strings"

	"parapriori/internal/apriori"
	"parapriori/internal/core"
	"parapriori/internal/datagen"
	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
)

// Config scales and seeds the experiment workloads.
type Config struct {
	// Scale multiplies transaction counts.  1.0 (the default) keeps every
	// experiment in CI-friendly territory; larger values sharpen the
	// asymptotic shapes at the cost of runtime.
	Scale float64
	// Quick trims the processor sweeps to their endpoints, for tests.
	Quick bool
	// MaxP, if positive, drops processor-sweep entries above it before
	// Quick trimming.  The -race -short CI job uses it to keep the
	// emulated machines small: race instrumentation makes the large-P
	// endpoints (64, 128 goroutines) the dominant cost.  Note that
	// shrinking Scale instead is counterproductive at the low end — near
	// the 100-transaction floor the support threshold rounds down to a
	// count of 1 and the candidate sets explode.
	MaxP int
	// Seed seeds the synthetic workload generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// scaled returns n transactions scaled by the config, at least 100.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 100 {
		v = 100
	}
	return v
}

// sweep returns the processor sweep: entries above MaxP are dropped (at
// least one survives), then Quick keeps only the endpoints.
func (c Config) sweep(ps []int) []int {
	if c.MaxP > 0 {
		var kept []int
		for _, p := range ps {
			if p <= c.MaxP {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			kept = ps[:1]
		}
		ps = kept
	}
	if !c.Quick || len(ps) <= 2 {
		return ps
	}
	return []int{ps[0], ps[len(ps)-1]}
}

// procs caps an experiment's fixed processor count by MaxP.
func (c Config) procs(p int) int {
	if c.MaxP > 0 && p > c.MaxP {
		return c.MaxP
	}
	return p
}

// Point is one (x, y) sample of a series.
type Point struct{ X, Y float64 }

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Result is a regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Series holds the figure curves (empty for pure tables).
	Series []Series
	// TableHeader and TableRows hold tabular output (Table II, and the
	// numeric dump that accompanies each figure).
	TableHeader []string
	TableRows   [][]string
	// Notes records workload parameters and observations worth keeping
	// next to the numbers.
	Notes []string
}

// WriteText renders the result as aligned text.
func (r *Result) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   %s\n", n)
	}
	if len(r.Series) > 0 {
		fmt.Fprintf(&b, "   x: %s, y: %s\n", r.XLabel, r.YLabel)
		for _, s := range r.Series {
			fmt.Fprintf(&b, "   %-10s", s.Name)
			for _, pt := range s.Points {
				fmt.Fprintf(&b, " (%.4g, %.4g)", pt.X, pt.Y)
			}
			fmt.Fprintln(&b)
		}
	}
	if len(r.TableHeader) > 0 {
		widths := make([]int, len(r.TableHeader))
		for i, h := range r.TableHeader {
			widths[i] = len(h)
		}
		for _, row := range r.TableRows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			b.WriteString("   ")
			for i, cell := range cells {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
			b.WriteString("\n")
		}
		writeRow(r.TableHeader)
		for _, row := range r.TableRows {
			writeRow(row)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Named pairs an experiment with its registry name.
type Named struct {
	Name string
	Doc  string
	Run  func(Config) (*Result, error)
}

// All returns every experiment in presentation order.
func All() []Named {
	return []Named{
		{"table2", "HD grid configuration per pass (Table II)", Table2},
		{"fig10", "Scaleup of CD/DD/DD+comm/IDD/HD (Figure 10)", Fig10},
		{"fig11", "Distinct leaf visits per transaction, DD vs IDD (Figure 11)", Fig11},
		{"fig12", "Response time vs candidates with disk I/O on SP2 (Figure 12)", Fig12},
		{"fig13", "Speedup at fixed N and M (Figure 13)", Fig13},
		{"fig14", "Runtime vs transactions at fixed M and P (Figure 14)", Fig14},
		{"fig15", "Runtime vs candidates at fixed N and P (Figure 15)", Fig15},
		{"model", "Section IV cost model vs emulation", Model},
		{"ablate", "Design ablations: G sweep, free-communication baseline, overlap", Ablate},
		{"hpa", "HPA vs IDD vs DD communication volume (Section III-E)", HPAStudy},
		{"faults", "Recovery overhead under loss/straggler/crash faults (CD, IDD, HD)", Faults},
		{"attrib", "Per-pass cost attribution from span traces, reconciled with cluster stats", Attrib},
		{"loadgen", "Distributed serving under closed-loop load (throughput, p99, delta publish)", LoadGen},
		{"churn", "Serving under churn: kill/restore and straggler injection at R=1 vs R=2", Churn},
		{"enginebench", "Counting-engine comparison: hashtree vs trie vs bitset (BENCH_mining.json)", EngineBenchTable},
		{"outofcore", "Peak heap vs database size, in-memory vs out-of-core CD", OutOfCore},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Named, bool) {
	for _, n := range All() {
		if n.Name == name {
			return n, true
		}
	}
	return Named{}, false
}

// baseGen returns the generator parameters shared by the T3E experiments:
// a scaled-down T15.I6-style workload that keeps candidate sets rich
// without making the emulation run for hours.
func baseGen(c Config, n int) datagen.Params {
	p := datagen.Defaults()
	p.NumTransactions = n
	p.NumItems = 400
	p.NumPatterns = 300
	p.AvgTxnLen = 12
	p.AvgPatternLen = 4
	p.Seed = c.Seed
	return p
}

func mustGen(p datagen.Params) (*itemset.Dataset, error) {
	d, err := datagen.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating workload: %w", err)
	}
	return d, nil
}

// totalCandidates sums |C_k| over the passes of a report.
func totalCandidates(rep *core.Report) int {
	total := 0
	for _, p := range rep.Passes {
		if p.K >= 2 {
			total += p.Candidates
		}
	}
	return total
}

func mineParams(minsup float64, maxPasses int) apriori.Params {
	// Fanout 64 keeps the hash trees in the L >> C regime the paper's
	// machines ran in (see hashtree.Config.Fanout).
	return apriori.Params{
		MinSupport: minsup,
		MaxPasses:  maxPasses,
		Tree:       hashtree.Config{Fanout: 64, MaxLeaf: 16},
	}
}
