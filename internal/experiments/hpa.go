package experiments

import (
	"fmt"

	"parapriori/internal/core"
)

// HPAStudy reproduces the Section III-E comparison of HPA against IDD (and
// DD) that the paper argues analytically: HPA ships every transaction's
// potential candidates to their hash owners, so its communication volume is
// O(N·C(I,k)) per pass — possibly *below* IDD's O(N) transaction movement
// at k = 2, but far above it for k ≥ 3, where C(I,k) explodes.  The harness
// tabulates per-pass communication bytes and the end-to-end response times.
func HPAStudy(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(6000)
	p := c.procs(16)
	minsup := 24.0 / float64(n)

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}

	algos := []core.Algorithm{core.HPA, core.IDD, core.DD}
	reports := map[core.Algorithm]*core.Report{}
	for _, algo := range algos {
		rep, err := core.Mine(data, core.Params{
			Algo:    algo,
			P:       p,
			Apriori: mineParams(minsup, 4),
		})
		if err != nil {
			return nil, fmt.Errorf("hpa study %s: %w", algo, err)
		}
		reports[algo] = rep
	}

	res := &Result{
		ID:     "hpa",
		Title:  "HPA vs IDD vs DD: per-pass communication volume (Section III-E)",
		XLabel: "pass k",
		YLabel: "bytes moved",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions, minsup %.3g, P=%d, passes 2-4", n, minsup, p),
			"paper: HPA ships O(N*C(I,k)) potential candidates; IDD ships O(N) transactions",
			fmt.Sprintf("response: HPA %.4fs, IDD %.4fs, DD %.4fs",
				reports[core.HPA].ResponseTime, reports[core.IDD].ResponseTime, reports[core.DD].ResponseTime),
		},
		TableHeader: []string{"pass", "HPA bytes", "IDD bytes", "DD bytes", "HPA/IDD"},
	}

	series := make([]Series, len(algos))
	for i, algo := range algos {
		series[i].Name = string(algo)
	}
	maxPass := 0
	for _, rep := range reports {
		if n := len(rep.Passes); n > maxPass {
			maxPass = n
		}
	}
	for k := 2; k <= maxPass; k++ {
		bytesOf := func(algo core.Algorithm) int64 {
			for _, pass := range reports[algo].Passes {
				if pass.K == k {
					return pass.BytesMoved
				}
			}
			return 0
		}
		hb, ib, db := bytesOf(core.HPA), bytesOf(core.IDD), bytesOf(core.DD)
		if hb == 0 && ib == 0 && db == 0 {
			continue
		}
		for i, algo := range algos {
			series[i].Points = append(series[i].Points, Point{X: float64(k), Y: float64(bytesOf(algo))})
		}
		ratio := "-"
		if ib > 0 {
			ratio = fmt.Sprintf("%.2f", float64(hb)/float64(ib))
		}
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", hb), fmt.Sprintf("%d", ib), fmt.Sprintf("%d", db),
			ratio,
		})
	}
	res.Series = series
	return res, nil
}
