package experiments

import (
	"fmt"

	"parapriori/internal/core"
)

// Fig10 reproduces the scaleup study of Figure 10: response time as the
// machine grows with a fixed number of transactions *per processor* and a
// fixed minimum support, for CD, DD, DD+comm, IDD and HD.
//
// The paper used 50 K transactions per processor at 0.1% support on the
// T3E; we default to a scaled-down per-processor load with the support
// chosen to keep candidate sets rich.  The expected shape: CD and HD stay
// nearly flat (HD below CD at large P), IDD drifts up with P (load
// imbalance, filtering overhead), DD grows steeply, and DD+comm sits
// between DD and IDD.
func Fig10(c Config) (*Result, error) {
	c = c.withDefaults()
	perProc := c.scaled(2000)
	const minsup = 0.01
	ps := c.sweep([]int{1, 2, 4, 8, 16, 32, 64, 128})
	// DD's emulation cost grows with P² (every processor processes every
	// transaction and every page crosses half the ring); the paper's own
	// DD curve is already off the chart well before 64.
	const ddMaxP = 16

	algos := []struct {
		name string
		algo core.Algorithm
		maxP int
	}{
		{"CD", core.CD, 1 << 30},
		{"DD", core.DD, ddMaxP},
		{"DD+comm", core.DDComm, ddMaxP},
		{"IDD", core.IDD, 1 << 30},
		{"HD", core.HD, 1 << 30},
	}

	res := &Result{
		ID:     "fig10",
		Title:  "Scaleup: response time vs processors (fixed transactions/processor)",
		XLabel: "processors",
		YLabel: "response time (virtual s)",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions/processor, minsup %.3g, T3E model", perProc, minsup),
			"paper: 50K transactions/processor, minsup 0.1%, Cray T3E (Fig. 10)",
		},
		TableHeader: []string{"P", "CD", "DD", "DD+comm", "IDD", "HD"},
	}
	series := make([]Series, len(algos))
	for i, a := range algos {
		series[i].Name = a.name
	}

	for _, p := range ps {
		data, err := mustGen(baseGen(c, perProc*p))
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", p)}
		for i, a := range algos {
			if p > a.maxP {
				row = append(row, "-")
				continue
			}
			rep, err := core.Mine(data, core.Params{
				Algo:        a.algo,
				P:           p,
				Apriori:     mineParams(minsup, 0),
				HDThreshold: 2000,
			})
			if err != nil {
				return nil, fmt.Errorf("fig10 %s P=%d: %w", a.name, p, err)
			}
			series[i].Points = append(series[i].Points, Point{X: float64(p), Y: rep.ResponseTime})
			row = append(row, fmt.Sprintf("%.4f", rep.ResponseTime))
		}
		res.TableRows = append(res.TableRows, row)
	}
	res.Series = series
	return res, nil
}

// Fig11 reproduces Figure 11: the average number of distinct hash-tree
// leaf nodes visited per transaction for DD vs IDD as P grows.  DD's
// V(C, L/P) barely falls with P — the redundant work — while IDD's
// V(C/P, L/P) drops by roughly a factor of P thanks to the bitmap pruning
// at the root.
func Fig11(c Config) (*Result, error) {
	c = c.withDefaults()
	perProc := c.scaled(1200)
	const minsup = 0.01 // the paper used 0.2%
	ps := c.sweep([]int{2, 4, 8, 16, 32})

	res := &Result{
		ID:     "fig11",
		Title:  "Average distinct leaf nodes visited per transaction (DD vs IDD)",
		XLabel: "processors",
		YLabel: "avg distinct leaves visited / transaction",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions/processor, minsup %.3g", perProc, minsup),
			"paper: 50K transactions/processor, minsup 0.2% (Fig. 11)",
		},
		TableHeader: []string{"P", "DD", "IDD", "DD/IDD"},
	}
	dd := Series{Name: "DD"}
	idd := Series{Name: "IDD"}
	for _, p := range ps {
		data, err := mustGen(baseGen(c, perProc*p))
		if err != nil {
			return nil, err
		}
		run := func(algo core.Algorithm) (float64, error) {
			rep, err := core.Mine(data, core.Params{
				Algo:    algo,
				P:       p,
				Apriori: mineParams(minsup, 0),
			})
			if err != nil {
				return 0, fmt.Errorf("fig11 %s P=%d: %w", algo, p, err)
			}
			return rep.AvgLeafVisitsPerTxn(), nil
		}
		dv, err := run(core.DD)
		if err != nil {
			return nil, err
		}
		iv, err := run(core.IDD)
		if err != nil {
			return nil, err
		}
		dd.Points = append(dd.Points, Point{X: float64(p), Y: dv})
		idd.Points = append(idd.Points, Point{X: float64(p), Y: iv})
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("%d", p), fmt.Sprintf("%.3f", dv), fmt.Sprintf("%.3f", iv),
			fmt.Sprintf("%.2f", dv/iv),
		})
	}
	res.Series = []Series{dd, idd}
	return res, nil
}
