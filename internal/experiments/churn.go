package experiments

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"parapriori/internal/apriori"
	"parapriori/internal/distserve"
	"parapriori/internal/itemset"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// Churn measures what replication buys the serving tier under failures: the
// same 3-node fleet is run at R=1 and R=2 while a closed-loop query stream
// is in flight, and the driver (a) kills and restores each node in turn and
// (b) injects a straggler delay on the preferred replica.  Per R it reports
//
//   - partial answers: queries that found a touched shard with no
//     reachable replica.  At R=1 every kill window produces them; at R=2
//     the survivor copy of every shard must keep the count at exactly 0;
//   - the failover machinery's work (retries, hedges, probes);
//   - the tail of the straggler phase: at R=1 a query has no alternative
//     but to wait out the delay, at R=2 the hedge races a replica and the
//     tail stays far below it — the "measurably flatter p99";
//   - the result hash over a fixed probe set on the healed fleet, which
//     must be identical across runs AND across R values: replication may
//     never change an answer, only availability.
//
// Timing columns are wall-clock and not reproducible; the partials floor,
// the zero at R=2 and the hashes are.
func Churn(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(2000)
	const minsup = 0.01
	const minconf = 0.5
	const topK = 10
	stall := 25 * time.Millisecond
	killProbes, stallProbes := 15, 12
	if c.Quick {
		stall = 15 * time.Millisecond
		killProbes, stallProbes = 8, 8
	}

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}
	mined, err := apriori.Mine(data, mineParams(minsup, 0))
	if err != nil {
		return nil, fmt.Errorf("churn: mining: %w", err)
	}
	v1, err := rules.Generate(mined, rules.Params{MinConfidence: minconf})
	if err != nil {
		return nil, fmt.Errorf("churn: rule generation: %w", err)
	}
	if len(v1) == 0 {
		return nil, fmt.Errorf("churn: no rules at minsup %g / minconf %g", minsup, minconf)
	}

	res := &Result{
		ID:     "churn",
		Title:  "Serving under churn: kill/restore and straggler injection at R=1 vs R=2",
		XLabel: "replicas",
		YLabel: "partial answers",
		Notes: []string{
			fmt.Sprintf("3 nodes, 64 shards, %d rules; each node killed and restored under a concurrent query stream, then a %v delay injected on the preferred replica", len(v1), stall),
			"partials must be 0 at R=2 (every shard keeps a live copy) and >0 at R=1 (kill windows orphan shards)",
			fmt.Sprintf("stall p99(ms) is the straggler-phase tail: R=1 waits the full %v, R=2 hedges past it", stall),
			"results hash is over the healed fleet and must agree across runs and across R",
		},
		TableHeader: []string{"replicas", "queries", "partials", "retries", "hedges", "probes", "stall p99(ms)", "p99(ms)", "results"},
	}
	partialsSeries := Series{Name: "partials"}
	stallSeries := Series{Name: "stall_p99_ms"}

	for _, r := range []int{1, 2} {
		row, err := churnOne(data, v1, r, topK, killProbes, stallProbes, stall, uint64(c.Seed))
		if err != nil {
			return nil, fmt.Errorf("churn: R=%d: %w", r, err)
		}
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%d", row.queries),
			fmt.Sprintf("%d", row.partials),
			fmt.Sprintf("%d", row.retries),
			fmt.Sprintf("%d", row.hedges),
			fmt.Sprintf("%d", row.probes),
			fmt.Sprintf("%.3f", row.stallP99ms),
			fmt.Sprintf("%.3f", row.p99ms),
			fmt.Sprintf("%016x", row.resultHash),
		})
		partialsSeries.Points = append(partialsSeries.Points, Point{X: float64(r), Y: float64(row.partials)})
		stallSeries.Points = append(stallSeries.Points, Point{X: float64(r), Y: row.stallP99ms})
	}
	res.Series = []Series{partialsSeries, stallSeries}
	return res, nil
}

// churnRow is one replication factor's sample.
type churnRow struct {
	queries    int64
	partials   int64
	retries    int64
	hedges     int64
	probes     int64
	stallP99ms float64
	p99ms      float64
	resultHash uint64
}

// churnOne runs the churn script against one fleet: background stream on,
// kill and restore each node with synchronous probe queries inside every
// kill window (so the window is guaranteed to be observed), straggler
// injection with per-query latency capture, then the deterministic hash
// pass on the healed fleet.
func churnOne(data *itemset.Dataset, v1 []rules.Rule, r, topK, killProbes, stallProbes int, stall time.Duration, seed uint64) (churnRow, error) {
	cl, err := distserve.NewCluster(3, distserve.Options{
		Shards:     64,
		Seed:       seed,
		Replicas:   r,
		HedgeDelay: 2 * time.Millisecond,
		Node:       serve.Options{},
	})
	if err != nil {
		return churnRow{}, err
	}
	defer cl.Close()
	if _, err := cl.Router.Publish(v1, true); err != nil {
		return churnRow{}, err
	}

	txns := data.Transactions
	const workers = 4
	var stop atomic.Bool
	errs := make([]error, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			for i := 0; !stop.Load(); i++ {
				basket := txns[(w+i*workers)%len(txns)].Items
				if _, err := cl.Router.Recommend(basket, topK); err != nil {
					errs[w] = err
					break
				}
			}
			done <- w
		}()
	}

	var row churnRow

	// Kill windows: take each node down in turn, drive probe queries
	// through the window so it is observed even if the stream stalls, then
	// restore and recover the detector with one probe round.
	for i, lc := range cl.Clients {
		lc.SetDown(true)
		for q := 0; q < killProbes; q++ {
			if _, err := cl.Router.Recommend(txns[(i*killProbes+q)%len(txns)].Items, topK); err != nil {
				stop.Store(true)
				return churnRow{}, err
			}
		}
		lc.SetDown(false)
		cl.Router.ProbeOnce()
	}

	// Straggler phase: delay the preferred replica of shard 0 and measure
	// the driver's own tail across queries that are free to hedge (R=2) or
	// stuck waiting (R=1).
	stragglerID := cl.Router.Replicas()[0][0]
	for _, lc := range cl.Clients {
		if lc.Node().ID() == stragglerID {
			lc.SetDelay(stall)
		}
	}
	for q := 0; q < stallProbes; q++ {
		begin := time.Now() //checkinv:allow walltime — the churn driver measures real serving latency, never the virtual clock
		if _, err := cl.Router.Recommend(txns[q%len(txns)].Items, topK); err != nil {
			stop.Store(true)
			return churnRow{}, err
		}
		if ms := time.Since(begin).Seconds() * 1e3; ms > row.stallP99ms { //checkinv:allow walltime — pairs with the time.Now above
			row.stallP99ms = ms
		}
	}
	for _, lc := range cl.Clients {
		lc.SetDelay(0)
	}

	stop.Store(true)
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return churnRow{}, err
		}
	}

	// Healed-fleet hash pass: deterministic baskets, exact answers.
	cl.Router.ProbeOnce()
	h := fnv.New64a()
	probes := 30
	if probes > len(txns) {
		probes = len(txns)
	}
	for i := 0; i < probes; i++ {
		res, err := cl.Router.Recommend(txns[i].Items, topK)
		if err != nil {
			return churnRow{}, err
		}
		if res.Partial {
			return churnRow{}, fmt.Errorf("partial answer on a fully healed fleet (missed %v)", res.MissedShards)
		}
		hashAnswer(h, txns[i].Items, res.Rules)
	}
	row.resultHash = h.Sum64()

	m := cl.Router.Metrics()
	row.queries = m.Queries
	row.partials = m.PartialResults
	row.retries = m.Retries
	row.hedges = m.Hedges
	row.probes = m.Probes
	row.p99ms = m.P99LatencyMicros / 1000
	return row, nil
}
