package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteChart renders the result's series as an ASCII scatter chart of the
// given dimensions (sensible minimums are enforced).  Each series gets a
// glyph; overlapping points show the later series' glyph.  Axes are linear
// and annotated with their extremes, which is enough to eyeball the shapes
// the figures are about — crossovers, flat lines, blow-ups — right in the
// terminal.
func (r *Result) WriteChart(w io.Writer, width, height int) error {
	if len(r.Series) == 0 {
		return nil
	}
	if width < 24 {
		width = 24
	}
	if height < 8 {
		height = 8
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range r.Series {
		for _, pt := range s.Points {
			minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
			minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
		}
	}
	if math.IsInf(minX, 1) {
		return nil // no points anywhere
	}
	//checkinv:allow floatcmp — exact degenerate-range guard before dividing by (max-min)
	if maxX == minX {
		maxX = minX + 1
	}
	//checkinv:allow floatcmp — exact degenerate-range guard before dividing by (max-min)
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte("*o+x#@%&")
	for si, s := range r.Series {
		g := glyphs[si%len(glyphs)]
		for _, pt := range s.Points {
			col := int(math.Round((pt.X - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((pt.Y - minY) / (maxY - minY) * float64(height-1)))
			grid[height-1-row][col] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	yTop := fmt.Sprintf("%.4g", maxY)
	yBot := fmt.Sprintf("%.4g", minY)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", margin)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", margin, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	pad := strings.Repeat(" ", margin)
	fmt.Fprintf(&b, "%s  %-*s%s\n", pad, width-len(fmt.Sprintf("%.4g", maxX)), fmt.Sprintf("%.4g", minX), fmt.Sprintf("%.4g", maxX))
	fmt.Fprintf(&b, "%s  x: %s, y: %s\n", pad, r.XLabel, r.YLabel)
	for si, s := range r.Series {
		fmt.Fprintf(&b, "%s  %c = %s\n", pad, glyphs[si%len(glyphs)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
