package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"parapriori/internal/apriori"
	"parapriori/internal/distserve"
	"parapriori/internal/itemset"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// LoadGen exercises the distributed serving tier end to end: rules mined
// from a Quest-style workload are sharded across an in-process fleet, and
// closed-loop workers replay the workload's own transactions as basket
// queries against the router.  The sweep reports, per node count:
//
//   - throughput and p99 latency of the scatter-gather path (wall-clock
//     measurements of real goroutines — the one experiment family that is
//     *meant* to run on the real clock, like package serve itself);
//   - the router's mean fan-out per query, which the first-item sharding
//     keeps well below the node count;
//   - the canonical-byte cost of publishing a perturbed rule set as a
//     delta versus re-publishing it in full — the delta protocol's win;
//   - placement and result hashes: pure functions of the seed, identical
//     across runs, so two invocations with one Config must produce the
//     same hash columns even though the timing columns differ.
//
// Absolute throughput numbers are in-process (no network, shared CPUs) and
// only comparable within one run; the reproducible quantities are the
// hashes, the byte counts and the fan-out.
func LoadGen(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(2000)
	const minsup = 0.01
	const minconf = 0.5
	const topK = 10

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}
	mined, err := apriori.Mine(data, mineParams(minsup, 0))
	if err != nil {
		return nil, fmt.Errorf("loadgen: mining: %w", err)
	}
	v1, err := rules.Generate(mined, rules.Params{MinConfidence: minconf})
	if err != nil {
		return nil, fmt.Errorf("loadgen: rule generation: %w", err)
	}
	if len(v1) == 0 {
		return nil, fmt.Errorf("loadgen: no rules at minsup %g / minconf %g", minsup, minconf)
	}
	v2 := perturbRules(v1)

	queries := c.scaled(600)
	if c.Quick {
		queries = 200
	}
	const workers = 8

	res := &Result{
		ID:     "loadgen",
		Title:  "Distributed serving under closed-loop load (throughput, p99, delta publish)",
		XLabel: "nodes",
		YLabel: "queries/s (in-process)",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions, minsup %.3g, minconf %.3g → %d rules; %d closed-loop workers × %d queries, K=%d",
				n, minsup, minconf, len(v1), workers, queries/workers, topK),
			"throughput/p99 are wall-clock over in-process nodes: shapes only, not absolute serving capacity",
			"placement/result hashes are seed-deterministic; timing columns are not",
			fmt.Sprintf("delta(B) ships v1→v2 changed groups (%d of %d rules perturbed); full(B) re-ships all of v2", len(v1)-countUnchanged(v1, v2), len(v1)),
		},
		TableHeader: []string{"nodes", "qps", "p99(ms)", "fanout/q", "partial", "delta(B)", "full(B)", "placement", "results"},
	}
	thr := Series{Name: "qps"}
	fan := Series{Name: "fanout"}

	for _, nodes := range c.sweep([]int{1, 2, 4, 8}) {
		row, err := loadOne(data, v1, v2, nodes, workers, queries, topK, uint64(c.Seed))
		if err != nil {
			return nil, fmt.Errorf("loadgen: %d nodes: %w", nodes, err)
		}
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%.0f", row.qps),
			fmt.Sprintf("%.3f", row.p99ms),
			fmt.Sprintf("%.2f", row.fanout),
			fmt.Sprintf("%d", row.partials),
			fmt.Sprintf("%d", row.deltaBytes),
			fmt.Sprintf("%d", row.fullBytes),
			fmt.Sprintf("%016x", row.placementHash),
			fmt.Sprintf("%016x", row.resultHash),
		})
		thr.Points = append(thr.Points, Point{X: float64(nodes), Y: row.qps})
		fan.Points = append(fan.Points, Point{X: float64(nodes), Y: row.fanout})
	}
	res.Series = []Series{thr, fan}
	return res, nil
}

// loadRow is one node-count sample of the load sweep.
type loadRow struct {
	qps           float64
	p99ms         float64
	fanout        float64
	partials      int64
	deltaBytes    int64
	fullBytes     int64
	placementHash uint64
	resultHash    uint64
}

// loadOne runs the whole lifecycle against one fleet size: full publish of
// v1, the closed-loop load phase, a deterministic probe pass for the result
// hash, then the v1→v2 delta publish and a full v2 publish for the byte
// comparison.
func loadOne(data *itemset.Dataset, v1, v2 []rules.Rule, nodes, workers, queries, topK int, seed uint64) (loadRow, error) {
	cl, err := distserve.NewCluster(nodes, distserve.Options{Shards: 64, Seed: seed, Node: serve.Options{}})
	if err != nil {
		return loadRow{}, err
	}
	defer cl.Close()
	if _, err := cl.Router.Publish(v1, true); err != nil {
		return loadRow{}, err
	}

	var row loadRow
	row.placementHash = hashStrings(cl.Router.Placement())

	// Closed-loop load phase: each worker replays a strided slice of the
	// transaction log as baskets, back to back.  Elapsed wall time over
	// total queries is the throughput.
	txns := data.Transactions
	perWorker := queries / workers
	start := time.Now() //checkinv:allow walltime — the load generator measures real serving latency, never the virtual clock
	errs := make([]error, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			for i := 0; i < perWorker; i++ {
				basket := txns[(w+i*workers)%len(txns)].Items
				if _, err := cl.Router.Recommend(basket, topK); err != nil {
					errs[w] = err
					break
				}
			}
			done <- w
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	elapsed := time.Since(start) //checkinv:allow walltime — pairs with the load phase's time.Now above
	for _, err := range errs {
		if err != nil {
			return loadRow{}, err
		}
	}
	if elapsed > 0 {
		row.qps = float64(workers*perWorker) / elapsed.Seconds()
	}

	m := cl.Router.Metrics()
	row.p99ms = m.P99LatencyMicros / 1000
	row.fanout = m.FanoutPerQuery
	row.partials = m.PartialResults

	// Deterministic probe pass: a fixed set of baskets queried serially;
	// the hash of the ranked answers must agree across runs and fleets.
	h := fnv.New64a()
	probes := 50
	if probes > len(txns) {
		probes = len(txns)
	}
	for i := 0; i < probes; i++ {
		r, err := cl.Router.Recommend(txns[i].Items, topK)
		if err != nil {
			return loadRow{}, err
		}
		hashAnswer(h, txns[i].Items, r.Rules)
	}
	row.resultHash = h.Sum64()

	// Delta versus full: ship v1→v2 as a delta, then re-ship v2 in full.
	delta, err := cl.Router.Publish(v2, false)
	if err != nil {
		return loadRow{}, err
	}
	full, err := cl.Router.Publish(v2, true)
	if err != nil {
		return loadRow{}, err
	}
	row.deltaBytes = delta.Bytes
	row.fullBytes = full.Bytes
	return row, nil
}

// perturbRules derives the "next day's rules" deterministically from the
// current set: about one group in ten loses its last rule and one in ten
// gets a confidence nudge, leaving the bulk byte-identical — the small-
// delta regime the delta protocol targets.
func perturbRules(rs []rules.Rule) []rules.Rule {
	out := make([]rules.Rule, 0, len(rs))
	for _, r := range rs {
		h := fnv.New64a()
		h.Write([]byte(r.Antecedent.Key()))
		switch h.Sum64() % 10 {
		case 0: // drop this antecedent group entirely
		case 1:
			r.Confidence *= 0.97
			out = append(out, r)
		default:
			out = append(out, r)
		}
	}
	return out
}

// countUnchanged counts rules common to both sets (by full identity), for
// the notes line.
func countUnchanged(a, b []rules.Rule) int {
	h := fnv.New64a()
	keys := make(map[uint64]bool, len(b))
	for _, r := range b {
		h.Reset()
		hashRule(h, r)
		keys[h.Sum64()] = true
	}
	n := 0
	for _, r := range a {
		h.Reset()
		hashRule(h, r)
		if keys[h.Sum64()] {
			n++
		}
	}
	return n
}

// hashAnswer absorbs one (basket, ranked rules) pair into h.
func hashAnswer(h interface{ Write([]byte) (int, error) }, basket itemset.Itemset, rs []rules.Rule) {
	var buf [8]byte
	h.Write([]byte(basket.Key()))
	binary.BigEndian.PutUint64(buf[:], uint64(len(rs)))
	h.Write(buf[:])
	for _, r := range rs {
		hashRule(h, r)
	}
}

// hashRule absorbs one rule, floats by IEEE bit pattern so any drift shows.
func hashRule(h interface{ Write([]byte) (int, error) }, r rules.Rule) {
	var buf [8]byte
	h.Write([]byte(r.Antecedent.Key()))
	h.Write([]byte(r.Consequent.Key()))
	binary.BigEndian.PutUint64(buf[:], uint64(r.Count))
	h.Write(buf[:])
	for _, f := range [...]float64{r.Support, r.Confidence, r.Lift, r.Leverage} {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
}

// hashStrings hashes a string slice in order.
func hashStrings(ss []string) uint64 {
	h := fnv.New64a()
	for _, s := range ss {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
