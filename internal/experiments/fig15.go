package experiments

import (
	"fmt"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/core"
	"parapriori/internal/hashtree"
)

// Fig15 reproduces Figure 15: runtime as the candidate count grows (by
// lowering minimum support) with N and P fixed at 64 processors, pass 3
// measured.  CD's memory holds only the base candidate volume, so larger M
// forces partitioned counting and its curve climbs as O(M); IDD and HD
// spread candidates across the aggregate memory (O(M/P), O(M/G)) and
// eventually overtake CD — HD collapsing onto IDD once G reaches P,
// matching the caption's 8×8 → 16×4 → 32×2 → 64×1 progression.
func Fig15(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(16000)
	p := c.procs(64)
	minsups := []float64{0.006, 0.004, 0.003, 0.002, 0.0015, 0.001}
	if c.Quick {
		minsups = []float64{0.006, 0.002}
	}

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}

	// Per-node memory sized to the base point's largest tree, as in Fig12.
	pre, err := apriori.Mine(data, apriori.Params{MinSupport: minsups[0], MaxPasses: 3})
	if err != nil {
		return nil, fmt.Errorf("fig15 pre-pass: %w", err)
	}
	capBytes := 0
	baseM := 0
	for _, pass := range pre.Passes {
		if pass.K < 2 {
			continue
		}
		if b := hashtree.EstimateMemoryBytes(pass.Candidates, pass.K, hashtree.Config{}); b > capBytes {
			capBytes = b
		}
		baseM += pass.Candidates
	}
	machine := cluster.T3E()
	machine.MemoryBytes = capBytes
	// HD threshold sized so the base point runs an 8-row grid and larger
	// candidate volumes widen it toward pure IDD, like the caption's
	// progression.
	threshold := baseM / 8
	if threshold < 1 {
		threshold = 1
	}

	res := &Result{
		ID:     "fig15",
		Title:  "Runtime vs candidate count (fixed N, P=64, pass 3 only)",
		XLabel: "total candidates",
		YLabel: "response time (virtual s)",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions, P=%d, CD tree capped at %d bytes/node, HD m=%d", n, p, capBytes, threshold),
			"paper: M=0.7M..8M, N=1.3M, P=64; HD grids 8x8..64x1 (Fig. 15)",
		},
		TableHeader: []string{"minsup", "candidates", "CD", "CD scans", "IDD", "HD", "HD grid"},
	}
	cd := Series{Name: "CD"}
	idd := Series{Name: "IDD"}
	hd := Series{Name: "HD"}

	for _, ms := range minsups {
		run := func(algo core.Algorithm) (*core.Report, error) {
			rep, err := core.Mine(data, core.Params{
				Algo:        algo,
				P:           p,
				Machine:     machine,
				Apriori:     mineParams(ms, 3),
				HDThreshold: threshold,
			})
			if err != nil {
				return nil, fmt.Errorf("fig15 %s minsup=%g: %w", algo, ms, err)
			}
			return rep, nil
		}
		cdRep, err := run(core.CD)
		if err != nil {
			return nil, err
		}
		iddRep, err := run(core.IDD)
		if err != nil {
			return nil, err
		}
		hdRep, err := run(core.HD)
		if err != nil {
			return nil, err
		}
		m := float64(totalCandidates(cdRep))
		cd.Points = append(cd.Points, Point{X: m, Y: pass3Time(cdRep)})
		idd.Points = append(idd.Points, Point{X: m, Y: pass3Time(iddRep)})
		hd.Points = append(hd.Points, Point{X: m, Y: pass3Time(hdRep)})

		scans, grid := 0, ""
		for _, pass := range cdRep.Passes {
			scans += pass.TreeParts
		}
		for _, pass := range hdRep.Passes {
			if pass.K == 3 {
				grid = fmt.Sprintf("%dx%d", pass.GridRows, pass.GridCols)
			}
		}
		res.TableRows = append(res.TableRows, []string{
			fmt.Sprintf("%.4g", ms),
			fmt.Sprintf("%.0f", m),
			fmt.Sprintf("%.4f", pass3Time(cdRep)),
			fmt.Sprintf("%d", scans),
			fmt.Sprintf("%.4f", pass3Time(iddRep)),
			fmt.Sprintf("%.4f", pass3Time(hdRep)),
			grid,
		})
	}
	res.Series = []Series{cd, idd, hd}
	return res, nil
}
