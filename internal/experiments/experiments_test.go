package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// quickCfg keeps experiment smoke tests small: endpoint-only sweeps at a
// tenth of the default workload.  Under `go test -short` (the -race CI
// job) the processor sweeps are additionally capped — with race
// instrumentation the 64- and 128-goroutine machines dominate the
// runtime.  Scale stays put: near the 100-transaction floor the support
// threshold degenerates and candidate sets blow up.
func quickCfg() Config {
	c := Config{Scale: 0.15, Quick: true, Seed: 7}
	if testing.Short() {
		c.MaxP = 16
	}
	return c
}

func runNamed(t *testing.T, name string) *Result {
	t.Helper()
	n, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	res, err := n.Run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.ID != name {
		t.Errorf("%s: result ID = %q", name, res.ID)
	}
	return res
}

func TestAllRegistered(t *testing.T) {
	want := []string{"table2", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "model", "ablate", "hpa", "faults", "attrib", "loadgen", "churn", "enginebench", "outofcore"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d entries, want %d", len(all), len(want))
	}
	for i, n := range all {
		if n.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, n.Name, want[i])
		}
		if n.Run == nil || n.Doc == "" {
			t.Errorf("entry %q incomplete", n.Name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestTable2ShrinkingGrid(t *testing.T) {
	res := runNamed(t, "table2")
	if len(res.TableRows) < 2 {
		t.Fatalf("only %d rows", len(res.TableRows))
	}
	// The last pass should have collapsed toward CD: fewer grid rows than
	// the widest pass.
	first := res.TableRows[0][1]
	last := res.TableRows[len(res.TableRows)-1][1]
	if first == last && len(res.TableRows) > 3 {
		t.Errorf("grid never changed: first %s, last %s", first, last)
	}
	if !strings.Contains(last, "1x") {
		t.Errorf("final pass grid = %s, want CD-like 1xP", last)
	}
}

func TestFig10Shapes(t *testing.T) {
	res := runNamed(t, "fig10")
	series := map[string][]Point{}
	for _, s := range res.Series {
		series[s.Name] = s.Points
	}
	cd, hd := series["CD"], series["HD"]
	if len(cd) < 2 || len(hd) < 2 {
		t.Fatalf("missing endpoints: CD %d, HD %d points", len(cd), len(hd))
	}
	// Scaleup: CD stays within 2x of its P=1 time across the sweep.
	if cd[len(cd)-1].Y > 2*cd[0].Y {
		t.Errorf("CD scaleup broke: %v -> %v", cd[0].Y, cd[len(cd)-1].Y)
	}
	// HD at the largest machine beats or matches CD.
	if hd[len(hd)-1].Y > cd[len(cd)-1].Y*1.1 {
		t.Errorf("HD (%v) worse than CD (%v) at max P", hd[len(hd)-1].Y, cd[len(cd)-1].Y)
	}
}

func TestFig11IDDBelowDD(t *testing.T) {
	res := runNamed(t, "fig11")
	var dd, idd []Point
	for _, s := range res.Series {
		switch s.Name {
		case "DD":
			dd = s.Points
		case "IDD":
			idd = s.Points
		}
	}
	if len(dd) == 0 || len(dd) != len(idd) {
		t.Fatalf("series lengths: DD %d, IDD %d", len(dd), len(idd))
	}
	for i := range dd {
		if idd[i].Y >= dd[i].Y {
			t.Errorf("P=%v: IDD %v not below DD %v", dd[i].X, idd[i].Y, dd[i].Y)
		}
	}
	// The gap grows with P (the paper's point).
	firstRatio := dd[0].Y / idd[0].Y
	lastRatio := dd[len(dd)-1].Y / idd[len(idd)-1].Y
	if lastRatio <= firstRatio {
		t.Errorf("DD/IDD ratio did not grow: %v -> %v", firstRatio, lastRatio)
	}
}

func TestFig12CDLosesAtHighM(t *testing.T) {
	res := runNamed(t, "fig12")
	series := map[string][]Point{}
	for _, s := range res.Series {
		series[s.Name] = s.Points
	}
	cd, idd := series["CD"], series["IDD"]
	last := len(cd) - 1
	if cd[last].Y <= idd[last].Y {
		t.Errorf("at max candidates CD (%v) should lose to IDD (%v)", cd[last].Y, idd[last].Y)
	}
	// Candidates grow along the sweep.
	if cd[last].X <= cd[0].X {
		t.Errorf("candidate count did not grow: %v -> %v", cd[0].X, cd[last].X)
	}
}

func TestFig13SpeedupsPositive(t *testing.T) {
	res := runNamed(t, "fig13")
	for _, s := range res.Series {
		for _, pt := range s.Points {
			if pt.Y <= 0 {
				t.Errorf("%s at P=%v: speedup %v", s.Name, pt.X, pt.Y)
			}
		}
		last := s.Points[len(s.Points)-1]
		if last.X > 1 && last.Y < 1 {
			t.Errorf("%s: speedup %v below 1 at P=%v", s.Name, last.Y, last.X)
		}
	}
}

func TestFig14RuntimeGrowsWithN(t *testing.T) {
	res := runNamed(t, "fig14")
	for _, s := range res.Series {
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.Y <= first.Y {
			t.Errorf("%s: runtime did not grow with N: %v -> %v", s.Name, first.Y, last.Y)
		}
	}
}

func TestFig15IDDBeatsCDAtHighM(t *testing.T) {
	res := runNamed(t, "fig15")
	series := map[string][]Point{}
	for _, s := range res.Series {
		series[s.Name] = s.Points
	}
	cd, idd, hd := series["CD"], series["IDD"], series["HD"]
	last := len(cd) - 1
	if cd[last].Y <= idd[last].Y {
		t.Errorf("at max M: CD %v should exceed IDD %v", cd[last].Y, idd[last].Y)
	}
	if hd[last].Y > idd[last].Y*1.05 {
		t.Errorf("at max M HD (%v) should track IDD (%v)", hd[last].Y, idd[last].Y)
	}
}

func TestModelOrdering(t *testing.T) {
	res := runNamed(t, "model")
	pred := map[string][]Point{}
	for _, s := range res.Series {
		pred[s.Name] = s.Points
	}
	dd, cd := pred["DD pred"], pred["CD pred"]
	for i := range dd {
		if dd[i].Y <= cd[i].Y {
			t.Errorf("P=%v: predicted DD %v not above CD %v", dd[i].X, dd[i].Y, cd[i].Y)
		}
	}
	ddm, cdm := pred["DD meas"], pred["CD meas"]
	for i := range ddm {
		if ddm[i].Y <= cdm[i].Y {
			t.Errorf("P=%v: measured DD %v not above CD %v", ddm[i].X, ddm[i].Y, cdm[i].Y)
		}
	}
}

func TestAblateGBowl(t *testing.T) {
	res := runNamed(t, "ablate")
	var sweep []Point
	for _, s := range res.Series {
		if s.Name == "HD(G)" {
			sweep = s.Points
		}
	}
	if len(sweep) < 3 {
		t.Fatalf("G sweep has %d points", len(sweep))
	}
	// The best G is strictly better than at least one corner (the bowl).
	best := sweep[0].Y
	for _, pt := range sweep {
		if pt.Y < best {
			best = pt.Y
		}
	}
	cd, idd := sweep[0].Y, sweep[len(sweep)-1].Y
	if !(best < cd) && !(best < idd) {
		t.Errorf("no interior G beats both corners: best %v, G=1 %v, G=P %v", best, cd, idd)
	}
	// The communication ablation table must include every algorithm on
	// both machines plus the overlap rows.
	if len(res.TableRows) < 5+12+2 {
		t.Errorf("ablation table has only %d rows", len(res.TableRows))
	}
}

func TestHPAStudyCommunication(t *testing.T) {
	res := runNamed(t, "hpa")
	if len(res.TableRows) < 2 {
		t.Fatalf("only %d passes tabulated", len(res.TableRows))
	}
	series := map[string][]Point{}
	for _, s := range res.Series {
		series[s.Name] = s.Points
	}
	hpa, idd := series["hpa"], series["idd"]
	if len(hpa) != len(idd) || len(hpa) == 0 {
		t.Fatalf("series lengths: hpa %d, idd %d", len(hpa), len(idd))
	}
	// Section III-E: for k >= 3 HPA's volume exceeds IDD's.
	for i := range hpa {
		if hpa[i].X >= 3 && hpa[i].Y <= idd[i].Y {
			t.Errorf("pass %v: HPA bytes %v not above IDD %v", hpa[i].X, hpa[i].Y, idd[i].Y)
		}
	}
}

func TestFaultsOverheadShapes(t *testing.T) {
	res := runNamed(t, "faults")
	if len(res.Series) != 3 {
		t.Fatalf("want 3 algo series, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) < 4 {
			t.Fatalf("%s: only %d fault configurations", s.Name, len(s.Points))
		}
		// Overhead never drops below 1: the fault-free baseline carries no
		// plan, while every sweep configuration (even the all-zero first
		// one) pays at least the pass-level checkpoint charges.
		for _, pt := range s.Points {
			if pt.Y < 1 {
				t.Errorf("%s cfg %v: overhead %v below 1", s.Name, pt.X, pt.Y)
			}
		}
		// The harshest configuration (last: max loss, max slowdown, crash)
		// must cost more than the gentlest.
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if last.Y <= first.Y {
			t.Errorf("%s: overhead did not grow across the sweep: %v -> %v", s.Name, first.Y, last.Y)
		}
	}
}

// TestAttribDecomposition checks the span-trace cost attribution: every
// tabulated pass accounts its time into the five categories, and DD's
// communication share exceeds CD's (the decomposition the experiment is
// for).  The reconciliation against cluster.Stats happens inside the
// experiment itself — a mismatch is returned as an error, so runNamed's
// Fatalf covers it.
func TestAttribDecomposition(t *testing.T) {
	res := runNamed(t, "attrib")
	if len(res.TableRows) < 4 {
		t.Fatalf("only %d rows", len(res.TableRows))
	}
	for _, row := range res.TableRows {
		if len(row) != len(res.TableHeader) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(res.TableHeader))
		}
	}
	// Quick mode runs CD and IDD; both must contribute a comm-share series
	// with at least one pass-k point.
	names := map[string]int{}
	for _, s := range res.Series {
		names[s.Name] = len(s.Points)
	}
	for _, want := range []string{"CD", "IDD"} {
		if names[want] == 0 {
			t.Errorf("series %q missing or empty (have %v)", want, names)
		}
	}
}

// TestFaultsDeterministic is the acceptance criterion for the sweep: two
// runs with the same Config must be bit-identical.
func TestFaultsDeterministic(t *testing.T) {
	a := runNamed(t, "faults")
	b := runNamed(t, "faults")
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault sweep not reproducible:\n%+v\n%+v", a, b)
	}
}

func TestWriteText(t *testing.T) {
	res := &Result{
		ID: "x", Title: "t", XLabel: "p", YLabel: "s",
		Series:      []Series{{Name: "A", Points: []Point{{1, 2}}}},
		TableHeader: []string{"a", "b"},
		TableRows:   [][]string{{"1", "2"}},
		Notes:       []string{"note"},
	}
	var sb strings.Builder
	if err := res.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== x: t ==", "note", "A", "(1, 2)", "a", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Seed == 0 { //checkinv:allow floatcmp default is exactly 1
		t.Errorf("defaults = %+v", c)
	}
	if got := (Config{Scale: 0.001}).scaled(1000); got != 100 {
		t.Errorf("scaled floor = %d", got)
	}
	full := Config{}.sweep([]int{1, 2, 3})
	if len(full) != 3 {
		t.Errorf("non-quick sweep trimmed: %v", full)
	}
	quick := Config{Quick: true}.sweep([]int{1, 2, 3, 4})
	if len(quick) != 2 || quick[0] != 1 || quick[1] != 4 {
		t.Errorf("quick sweep = %v", quick)
	}
	capped := Config{Quick: true, MaxP: 3}.sweep([]int{1, 2, 3, 4})
	if len(capped) != 2 || capped[0] != 1 || capped[1] != 3 {
		t.Errorf("capped sweep = %v", capped)
	}
	if floor := (Config{MaxP: 2}).sweep([]int{8, 16}); len(floor) != 1 || floor[0] != 8 {
		t.Errorf("over-capped sweep = %v", floor)
	}
}
