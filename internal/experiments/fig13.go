package experiments

import (
	"fmt"

	"parapriori/internal/core"
)

// pass3Time returns the virtual response time of the k=3 pass, the
// quantity the paper's Figures 13–15 measure ("we measured performance for
// computing size 3 frequent item sets only, as the computation for size 3
// item sets took more than 55% of the total run time").
func pass3Time(rep *core.Report) float64 {
	for _, pass := range rep.Passes {
		if pass.K == 3 {
			return pass.ResponseTime
		}
	}
	return 0
}

// fixedGFor mirrors the grids of the Figure 13 caption (8×2 at 16, 8×4 at
// 32, 8×8 at 64): G pinned to 8 once the machine is big enough.
func fixedGFor(p int) int {
	if p < 8 {
		return p
	}
	return 8
}

// Fig13 reproduces the speedup study of Figure 13: N and M fixed, P swept,
// measuring pass 3 only.  CD's speedup flattens because hash-tree
// construction and the global reduction stay O(M) no matter how many
// processors share the counting; IDD's flattens because of load imbalance
// with few candidates per processor; HD stays closest to linear.
func Fig13(c Config) (*Result, error) {
	c = c.withDefaults()
	n := c.scaled(24000)
	const minsup = 0.0025
	ps := c.sweep([]int{1, 2, 4, 8, 16, 32, 64})

	data, err := mustGen(baseGen(c, n))
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig13",
		Title:  "Speedup vs processors (fixed N and M, pass 3 only)",
		XLabel: "processors",
		YLabel: "speedup",
		Notes: []string{
			fmt.Sprintf("workload: %d transactions, minsup %.3g, HD grid pinned to %d rows", n, minsup, 8),
			"paper: N=1.3M, M=0.7M, Cray T3E; HD grids 8x2, 8x4, 8x8 (Fig. 13)",
		},
		TableHeader: []string{"P", "CD", "IDD", "HD"},
	}
	algos := []struct {
		name string
		algo core.Algorithm
	}{{"CD", core.CD}, {"IDD", core.IDD}, {"HD", core.HD}}
	series := make([]Series, len(algos))
	var baseline float64

	for _, p := range ps {
		row := []string{fmt.Sprintf("%d", p)}
		for i, a := range algos {
			series[i].Name = a.name
			prm := core.Params{
				Algo:    a.algo,
				P:       p,
				Apriori: mineParams(minsup, 3),
			}
			if a.algo == core.HD {
				prm.FixedG = fixedGFor(p)
			}
			rep, err := core.Mine(data, prm)
			if err != nil {
				return nil, fmt.Errorf("fig13 %s P=%d: %w", a.name, p, err)
			}
			t := pass3Time(rep)
			if p == ps[0] && a.algo == core.CD {
				// The P=1 CD run is the serial algorithm (plus a trivial
				// self-reduction): the speedup baseline.
				baseline = t * float64(ps[0])
			}
			sp := 0.0
			if t > 0 {
				sp = baseline / t
			}
			series[i].Points = append(series[i].Points, Point{X: float64(p), Y: sp})
			row = append(row, fmt.Sprintf("%.2f", sp))
		}
		res.TableRows = append(res.TableRows, row)
	}
	res.Series = series
	return res, nil
}
