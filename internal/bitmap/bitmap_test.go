package bitmap

import (
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		if b.Test(i) {
			t.Errorf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
}

func TestOutOfRangeTestIsFalse(t *testing.T) {
	b := New(10)
	for _, i := range []int{-1, 10, 11, 1000} {
		if b.Test(i) {
			t.Errorf("Test(%d) = true for capacity 10", i)
		}
	}
}

func TestZeroCapacity(t *testing.T) {
	b := New(0)
	if b.Count() != 0 || b.Test(0) {
		t.Error("zero-capacity bitmap misbehaves")
	}
	neg := New(-5)
	if neg.Cap() != 0 {
		t.Errorf("New(-5).Cap() = %d", neg.Cap())
	}
}

func TestReset(t *testing.T) {
	b := New(100)
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Count after Reset = %d", b.Count())
	}
	if b.Cap() != 100 {
		t.Errorf("Cap after Reset = %d", b.Cap())
	}
}

func TestOrAndClone(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(1)
	a.Set(65)
	b.Set(2)
	b.Set(65)
	c := a.Clone()
	c.Or(b)
	for _, i := range []int{1, 2, 65} {
		if !c.Test(i) {
			t.Errorf("bit %d missing after Or", i)
		}
	}
	if c.Count() != 3 {
		t.Errorf("Count = %d, want 3", c.Count())
	}
	// a unchanged by Or on its clone.
	if a.Count() != 2 {
		t.Errorf("original mutated: Count = %d", a.Count())
	}
}

func TestCountMatchesModel(t *testing.T) {
	f := func(xs []uint8) bool {
		b := New(256)
		model := map[int]bool{}
		for _, x := range xs {
			b.Set(int(x))
			model[int(x)] = true
		}
		if b.Count() != len(model) {
			return false
		}
		for i := 0; i < 256; i++ {
			if b.Test(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytes(t *testing.T) {
	if got := New(64).Bytes(); got != 8 {
		t.Errorf("Bytes = %d, want 8", got)
	}
	if got := New(65).Bytes(); got != 16 {
		t.Errorf("Bytes = %d, want 16", got)
	}
}
