// Package bitmap implements a dense bitset over small non-negative integers.
//
// IDD keeps, at every processor, a bitmap of the first items of the
// candidates assigned to that processor; the subset function consults it at
// the hash-tree root to skip transaction items that cannot start a local
// candidate (Section III-C of the paper).
package bitmap

import "math/bits"

// Bitmap is a fixed-capacity bitset.  The zero value is an empty bitmap of
// capacity 0; use New to allocate capacity.
type Bitmap struct {
	words []uint64
	n     int
}

// New returns an empty bitmap able to hold values in [0, n).
func New(n int) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the capacity n given to New.
func (b *Bitmap) Cap() int { return b.n }

// Set sets bit i.  Setting a bit outside [0, Cap()) panics, as it would in
// an array: the caller sized the bitmap to the item vocabulary.
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set.  Out-of-range values report false so
// filtering with a bitmap sized to the vocabulary is always safe.
func (b *Bitmap) Test(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Reset clears every bit, keeping capacity.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Or merges other into b.  The two bitmaps must have the same capacity.
func (b *Bitmap) Or(other *Bitmap) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Bytes returns the memory footprint of the bitmap payload, used by the
// cluster cost model when bitmaps are exchanged.
func (b *Bitmap) Bytes() int { return 8 * len(b.words) }
